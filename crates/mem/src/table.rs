//! A flat open-addressed table keyed by cache-line address.
//!
//! The directory and the per-node coherence bookkeeping (presence
//! vectors, MSHRs, line versions) are all maps from [`LineAddr`] to a
//! small value, hit on every memory reference the simulator executes.
//! A general-purpose `HashMap` pays for that generality twice on this
//! path: SipHash on a key that is already a well-distributed integer,
//! and a heap indirection per bucket group. [`LineTable`] strips both
//! away — one multiply to mix the address, linear probing in a flat
//! table, and backward-shift deletion so lookups never wade through
//! tombstones.
//!
//! The storage is split struct-of-arrays: an occupancy bitmap, a dense
//! array of line-address tags, and the values in a parallel array. The
//! probe loop walks only the bitmap and the tags — eight entries per
//! cache line regardless of how large the value type is — and touches a
//! value lane only after the tag has matched. With the former
//! array-of-structs layout a directory entry dragged its whole ~64-byte
//! value through the cache on every probe step.
//!
//! Iteration order is the table's probe order, which depends on
//! insertion history — exactly like `HashMap`, anything canonical must
//! sort. The simulator's digest and artifact paths already do.

use crate::addr::LineAddr;

/// Multiplicative mixer (same odd constant as the sim-side fast hash):
/// spreads sequential line addresses across the table.
const MIX: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A flat open-addressed map from [`LineAddr`] to `V`.
///
/// Capacity is always a power of two and the table grows at 3/4 load,
/// so probe chains stay short. Use [`with_capacity`](Self::with_capacity)
/// to pre-size from the machine configuration and avoid rehashing during
/// a run.
#[derive(Clone, Debug)]
pub struct LineTable<V> {
    /// Occupancy bitmap, one bit per slot.
    occ: Vec<u64>,
    /// Line address of each occupied slot (stale where the bit is clear).
    tags: Vec<u64>,
    /// Value lane; `Some` exactly where the occupancy bit is set.
    values: Vec<Option<V>>,
    /// Occupied count.
    len: usize,
    /// `tags.len() - 1`; capacity is a power of two.
    mask: usize,
}

impl<V> LineTable<V> {
    /// An empty table with a minimal footprint.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty table pre-sized to hold `entries` lines without growing.
    pub fn with_capacity(entries: usize) -> Self {
        // 3/4 load factor: size so `entries` fits below the growth
        // threshold, with a floor of 8 slots.
        let cap = (entries * 4 / 3 + 1).next_power_of_two().max(8);
        let mut values = Vec::new();
        values.resize_with(cap, || None);
        LineTable {
            occ: vec![0; cap.div_ceil(64)],
            tags: vec![0; cap],
            values,
            len: 0,
            mask: cap - 1,
        }
    }

    #[inline]
    fn slot_of(&self, line: LineAddr) -> usize {
        (line.0.wrapping_mul(MIX) >> 32) as usize & self.mask
    }

    #[inline]
    fn occupied(&self, i: usize) -> bool {
        self.occ[i >> 6] & (1 << (i & 63)) != 0
    }

    #[inline]
    fn set_occupied(&mut self, i: usize) {
        self.occ[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear_occupied(&mut self, i: usize) {
        self.occ[i >> 6] &= !(1 << (i & 63));
    }

    /// Number of lines in the table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the slot holding `line`, if present. Touches only the
    /// occupancy bitmap and the tag lane.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let mut i = self.slot_of(line);
        loop {
            if !self.occupied(i) {
                return None;
            }
            if self.tags[i] == line.0 {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The value stored for `line`, if any.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&V> {
        self.find(line)
            .map(|i| self.values[i].as_ref().expect("occupied slot"))
    }

    /// Mutable access to the value stored for `line`, if any.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        let i = self.find(line)?;
        Some(self.values[i].as_mut().expect("occupied slot"))
    }

    /// Whether `line` has an entry.
    #[inline]
    pub fn contains_key(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Inserts or replaces the value for `line`, returning the previous
    /// value if there was one.
    pub fn insert(&mut self, line: LineAddr, value: V) -> Option<V> {
        self.grow_if_needed();
        let mut i = self.slot_of(line);
        loop {
            if !self.occupied(i) {
                self.set_occupied(i);
                self.tags[i] = line.0;
                self.values[i] = Some(value);
                self.len += 1;
                return None;
            }
            if self.tags[i] == line.0 {
                return self.values[i].replace(value);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The value for `line`, inserting `default()` first if absent.
    #[inline]
    pub fn get_or_insert_with(&mut self, line: LineAddr, default: impl FnOnce() -> V) -> &mut V {
        self.grow_if_needed();
        let mut i = self.slot_of(line);
        loop {
            if !self.occupied(i) {
                self.set_occupied(i);
                self.tags[i] = line.0;
                self.values[i] = Some(default());
                self.len += 1;
                break;
            }
            if self.tags[i] == line.0 {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.values[i].as_mut().expect("occupied slot")
    }

    /// Removes and returns the value for `line`, if present.
    ///
    /// Uses backward-shift deletion: subsequent entries of the probe
    /// chain slide back over the hole, so the table never accumulates
    /// tombstones and lookup cost stays proportional to load.
    pub fn remove(&mut self, line: LineAddr) -> Option<V> {
        let mut hole = self.find(line)?;
        let value = self.values[hole].take().expect("occupied slot");
        self.clear_occupied(hole);
        self.len -= 1;
        // Slide the rest of the cluster back.
        let mut i = (hole + 1) & self.mask;
        while self.occupied(i) {
            let k = self.tags[i];
            let home = self.slot_of(LineAddr(k));
            // `i` is movable into `hole` iff its home slot does not sit
            // strictly between the hole and `i` (cyclically): moving it
            // would otherwise break its own probe chain.
            let between = if hole <= i {
                home > hole && home <= i
            } else {
                home > hole || home <= i
            };
            if !between {
                self.tags[hole] = k;
                self.values[hole] = self.values[i].take();
                self.set_occupied(hole);
                self.clear_occupied(i);
                hole = i;
            }
            i = (i + 1) & self.mask;
        }
        Some(value)
    }

    /// Iterates over `(line, &value)` pairs in unspecified order,
    /// word-parallel over the occupancy bitmap.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &V)> {
        self.occ
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| {
                let mut w = word;
                std::iter::from_fn(move || {
                    if w == 0 {
                        return None;
                    }
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                })
            })
            .map(|i| {
                (
                    LineAddr(self.tags[i]),
                    self.values[i].as_ref().expect("occupied slot"),
                )
            })
    }

    fn grow_if_needed(&mut self) {
        if self.len * 4 < self.tags.len() * 3 {
            return;
        }
        let new_cap = self.tags.len() * 2;
        let old_occ = std::mem::replace(&mut self.occ, vec![0; new_cap.div_ceil(64)]);
        let old_tags = std::mem::replace(&mut self.tags, vec![0; new_cap]);
        let mut bigger = Vec::new();
        bigger.resize_with(new_cap, || None);
        let mut old_values = std::mem::replace(&mut self.values, bigger);
        self.mask = new_cap - 1;
        for (wi, &word) in old_occ.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let i = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let k = old_tags[i];
                let mut j = self.slot_of(LineAddr(k));
                while self.occupied(j) {
                    j = (j + 1) & self.mask;
                }
                self.set_occupied(j);
                self.tags[j] = k;
                self.values[j] = old_values[i].take();
            }
        }
    }
}

impl<V> Default for LineTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = LineTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(LineAddr(0x40), "a"), None);
        assert_eq!(t.insert(LineAddr(0x80), "b"), None);
        assert_eq!(t.insert(LineAddr(0x40), "a2"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(LineAddr(0x40)), Some(&"a2"));
        assert!(t.contains_key(LineAddr(0x80)));
        assert_eq!(t.remove(LineAddr(0x40)), Some("a2"));
        assert_eq!(t.remove(LineAddr(0x40)), None);
        assert_eq!(t.get(LineAddr(0x40)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut t = LineTable::new();
        *t.get_or_insert_with(LineAddr(7), || 10) += 1;
        *t.get_or_insert_with(LineAddr(7), || 10) += 1;
        assert_eq!(t.get(LineAddr(7)), Some(&12));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn with_capacity_does_not_grow_below_requested_size() {
        let mut t = LineTable::with_capacity(1000);
        let initial_slots = t.tags.len();
        for i in 0..1000u64 {
            t.insert(LineAddr(i * 64), i);
        }
        assert_eq!(t.tags.len(), initial_slots, "pre-sized table regrew");
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn zero_capacity_table_still_works() {
        let mut t = LineTable::with_capacity(0);
        for i in 0..100u64 {
            t.insert(LineAddr(i), i);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(LineAddr(99)), Some(&99));
    }

    /// The value lane must be `Some` exactly where the occupancy bit is
    /// set — the invariant that lets `get` unwrap after a tag match.
    fn assert_lanes_consistent<V>(t: &LineTable<V>) {
        for i in 0..t.tags.len() {
            assert_eq!(
                t.occupied(i),
                t.values[i].is_some(),
                "slot {i}: occupancy bit and value lane disagree"
            );
        }
    }

    /// Differential check against `HashMap` under a mixed workload, with
    /// sequential line addresses (the adversarial case for a weak mixer
    /// plus linear probing) and heavy deletion (exercising the
    /// backward-shift path, including clusters that wrap the table end).
    #[test]
    fn matches_hashmap_under_churn() {
        let mut t: LineTable<u64> = LineTable::new();
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for step in 0..50_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Small key space forces constant collisions and re-insertion
            // over freshly deleted slots.
            let line = (state >> 33) % 512;
            match state % 3 {
                0 => {
                    assert_eq!(t.insert(LineAddr(line), step), m.insert(line, step));
                }
                1 => {
                    assert_eq!(t.remove(LineAddr(line)), m.remove(&line));
                }
                _ => {
                    assert_eq!(t.get(LineAddr(line)), m.get(&line));
                    if let Some(v) = t.get_mut(LineAddr(line)) {
                        *v += 1;
                        *m.get_mut(&line).unwrap() += 1;
                    }
                }
            }
            assert_eq!(t.len(), m.len());
        }
        assert_lanes_consistent(&t);
        let mut got: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k.0, *v)).collect();
        let mut want: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    /// The first `count` line addresses whose home slot in a table with
    /// `mask` is exactly `slot` (brute-force; tables in these tests are
    /// tiny).
    fn lines_homed_at(mask: usize, slot: usize, count: usize) -> Vec<LineAddr> {
        (0u64..)
            .map(LineAddr)
            .filter(|l| (l.0.wrapping_mul(MIX) >> 32) as usize & mask == slot)
            .take(count)
            .collect()
    }

    /// Every entry must be reachable by linear probing from its home slot
    /// without crossing an empty slot — the invariant backward-shift
    /// deletion exists to maintain. A violation means an entry was
    /// stranded behind a hole and is silently lost to `get`.
    fn assert_no_stranded_entries<V>(t: &LineTable<V>) {
        assert_lanes_consistent(t);
        for i in 0..t.tags.len() {
            if !t.occupied(i) {
                continue;
            }
            let k = t.tags[i];
            let mut j = t.slot_of(LineAddr(k));
            loop {
                assert!(
                    t.occupied(j),
                    "line {k:#x} at slot {i} unreachable: empty slot {j} in its probe chain"
                );
                if j == i {
                    break;
                }
                j = (j + 1) & t.mask;
            }
        }
    }

    /// A probe cluster that starts in the last slot and wraps past index
    /// 0: removing its head must slide the wrapped entries back across
    /// the boundary.
    #[test]
    fn backward_shift_across_the_wraparound_boundary() {
        let mut t: LineTable<u32> = LineTable::with_capacity(0); // 8 slots
        let mask = t.mask;
        // Three lines all homed in the last slot: they occupy slots
        // mask, 0 and 1.
        let lines = lines_homed_at(mask, mask, 3);
        for (i, &l) in lines.iter().enumerate() {
            t.insert(l, i as u32);
        }
        assert_eq!(t.find(lines[0]), Some(mask));
        assert_eq!(t.find(lines[1]), Some(0));
        assert_eq!(t.find(lines[2]), Some(1));
        // Removing the head leaves a hole at `mask`; both wrapped entries
        // must slide back over it or they become unreachable.
        assert_eq!(t.remove(lines[0]), Some(0));
        assert_no_stranded_entries(&t);
        assert_eq!(t.get(lines[1]), Some(&1));
        assert_eq!(t.get(lines[2]), Some(&2));
        assert_eq!(t.len(), 2);
    }

    /// Removing a wrapped entry (one sitting below its home slot) must
    /// not drag entries that are already in their home slots out of
    /// position.
    #[test]
    fn wrapped_removal_respects_home_slots_below_zero() {
        let mut t: LineTable<u32> = LineTable::with_capacity(0); // 8 slots
        let mask = t.mask;
        let tail = lines_homed_at(mask, mask, 2);
        let head = lines_homed_at(mask, 0, 1)[0];
        // tail[0] lands at mask, tail[1] wraps to 0, pushing `head` (whose
        // home IS slot 0) to slot 1.
        t.insert(tail[0], 10);
        t.insert(tail[1], 11);
        t.insert(head, 12);
        assert_eq!(t.find(tail[1]), Some(0));
        assert_eq!(t.find(head), Some(1));
        // Deleting the wrapped entry at slot 0 must let `head` slide home,
        // not leave it stranded behind the hole.
        assert_eq!(t.remove(tail[1]), Some(11));
        assert_no_stranded_entries(&t);
        assert_eq!(t.find(head), Some(0));
        assert_eq!(t.get(tail[0]), Some(&10));
        // And deleting across the boundary again from the cluster head.
        assert_eq!(t.remove(tail[0]), Some(10));
        assert_no_stranded_entries(&t);
        assert_eq!(t.get(head), Some(&12));
    }

    /// Churn confined to homes in the last two slots and slot 0 so every
    /// probe sequence straddles index 0, mirrored against `HashMap`. The
    /// table never grows, so clusters repeatedly form, wrap, and break up
    /// at the boundary.
    #[test]
    fn wraparound_churn_matches_hashmap() {
        let mut t: LineTable<u64> = LineTable::with_capacity(0); // 8 slots
        let mask = t.mask;
        let mut pool = Vec::new();
        for slot in [mask - 1, mask, 0] {
            pool.extend(lines_homed_at(mask, slot, 2));
        }
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut state: u64 = 0x243f_6a88_85a3_08d3;
        for step in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = pool[(state >> 33) as usize % pool.len()];
            match state % 3 {
                0 => {
                    assert_eq!(t.insert(line, step), m.insert(line.0, step));
                }
                1 => {
                    assert_eq!(t.remove(line), m.remove(&line.0));
                }
                _ => {
                    assert_eq!(t.get(line), m.get(&line.0));
                }
            }
            assert_eq!(t.len(), m.len());
            assert_no_stranded_entries(&t);
        }
    }
}
