//! A flat open-addressed table keyed by cache-line address.
//!
//! The directory and the per-node coherence bookkeeping (presence
//! vectors, MSHRs, line versions) are all maps from [`LineAddr`] to a
//! small value, hit on every memory reference the simulator executes.
//! A general-purpose `HashMap` pays for that generality twice on this
//! path: SipHash on a key that is already a well-distributed integer,
//! and a heap indirection per bucket group. [`LineTable`] strips both
//! away — one multiply to mix the address, linear probing in a flat
//! `Vec`, and backward-shift deletion so lookups never wade through
//! tombstones.
//!
//! Iteration order is the table's probe order, which depends on
//! insertion history — exactly like `HashMap`, anything canonical must
//! sort. The simulator's digest and artifact paths already do.

use crate::addr::LineAddr;

/// Multiplicative mixer (same odd constant as the sim-side fast hash):
/// spreads sequential line addresses across the table.
const MIX: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A flat open-addressed map from [`LineAddr`] to `V`.
///
/// Capacity is always a power of two and the table grows at 3/4 load,
/// so probe chains stay short. Use [`with_capacity`](Self::with_capacity)
/// to pre-size from the machine configuration and avoid rehashing during
/// a run.
#[derive(Clone, Debug)]
pub struct LineTable<V> {
    /// `None` = empty slot; `Some((line, value))` = occupied.
    slots: Vec<Option<(u64, V)>>,
    /// Occupied count.
    len: usize,
    /// `slots.len() - 1`; capacity is a power of two.
    mask: usize,
}

impl<V> LineTable<V> {
    /// An empty table with a minimal footprint.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty table pre-sized to hold `entries` lines without growing.
    pub fn with_capacity(entries: usize) -> Self {
        // 3/4 load factor: size so `entries` fits below the growth
        // threshold, with a floor of 8 slots.
        let cap = (entries * 4 / 3 + 1).next_power_of_two().max(8);
        let mut slots = Vec::new();
        slots.resize_with(cap, || None);
        LineTable {
            slots,
            len: 0,
            mask: cap - 1,
        }
    }

    #[inline]
    fn slot_of(&self, line: LineAddr) -> usize {
        (line.0.wrapping_mul(MIX) >> 32) as usize & self.mask
    }

    /// Number of lines in the table.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the slot holding `line`, if present.
    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let mut i = self.slot_of(line);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == line.0 => return Some(i),
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// The value stored for `line`, if any.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&V> {
        self.find(line)
            .map(|i| &self.slots[i].as_ref().expect("occupied slot").1)
    }

    /// Mutable access to the value stored for `line`, if any.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        let i = self.find(line)?;
        Some(&mut self.slots[i].as_mut().expect("occupied slot").1)
    }

    /// Whether `line` has an entry.
    #[inline]
    pub fn contains_key(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Inserts or replaces the value for `line`, returning the previous
    /// value if there was one.
    pub fn insert(&mut self, line: LineAddr, value: V) -> Option<V> {
        self.grow_if_needed();
        let mut i = self.slot_of(line);
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == line.0 => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((line.0, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// The value for `line`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, line: LineAddr, default: impl FnOnce() -> V) -> &mut V {
        self.grow_if_needed();
        let mut i = self.slot_of(line);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == line.0 => break,
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((line.0, default()));
                    self.len += 1;
                    break;
                }
            }
        }
        &mut self.slots[i].as_mut().expect("occupied slot").1
    }

    /// Removes and returns the value for `line`, if present.
    ///
    /// Uses backward-shift deletion: subsequent entries of the probe
    /// chain slide back over the hole, so the table never accumulates
    /// tombstones and lookup cost stays proportional to load.
    pub fn remove(&mut self, line: LineAddr) -> Option<V> {
        let mut hole = self.find(line)?;
        let (_, value) = self.slots[hole].take().expect("occupied slot");
        self.len -= 1;
        // Slide the rest of the cluster back.
        let mut i = (hole + 1) & self.mask;
        while let Some((k, _)) = &self.slots[i] {
            let home = self.slot_of(LineAddr(*k));
            // `i` is movable into `hole` iff its home slot does not sit
            // strictly between the hole and `i` (cyclically): moving it
            // would otherwise break its own probe chain.
            let between = if hole <= i {
                home > hole && home <= i
            } else {
                home > hole || home <= i
            };
            if !between {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
            i = (i + 1) & self.mask;
        }
        Some(value)
    }

    /// Iterates over `(line, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (LineAddr(*k), v)))
    }

    fn grow_if_needed(&mut self) {
        if self.len * 4 < self.slots.len() * 3 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        let mut bigger = Vec::new();
        bigger.resize_with(new_cap, || None);
        let old = std::mem::replace(&mut self.slots, bigger);
        self.mask = new_cap - 1;
        for entry in old.into_iter().flatten() {
            let mut i = self.slot_of(LineAddr(entry.0));
            while self.slots[i].is_some() {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = Some(entry);
        }
    }
}

impl<V> Default for LineTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = LineTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(LineAddr(0x40), "a"), None);
        assert_eq!(t.insert(LineAddr(0x80), "b"), None);
        assert_eq!(t.insert(LineAddr(0x40), "a2"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(LineAddr(0x40)), Some(&"a2"));
        assert!(t.contains_key(LineAddr(0x80)));
        assert_eq!(t.remove(LineAddr(0x40)), Some("a2"));
        assert_eq!(t.remove(LineAddr(0x40)), None);
        assert_eq!(t.get(LineAddr(0x40)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut t = LineTable::new();
        *t.get_or_insert_with(LineAddr(7), || 10) += 1;
        *t.get_or_insert_with(LineAddr(7), || 10) += 1;
        assert_eq!(t.get(LineAddr(7)), Some(&12));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn with_capacity_does_not_grow_below_requested_size() {
        let mut t = LineTable::with_capacity(1000);
        let initial_slots = t.slots.len();
        for i in 0..1000u64 {
            t.insert(LineAddr(i * 64), i);
        }
        assert_eq!(t.slots.len(), initial_slots, "pre-sized table regrew");
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn zero_capacity_table_still_works() {
        let mut t = LineTable::with_capacity(0);
        for i in 0..100u64 {
            t.insert(LineAddr(i), i);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(LineAddr(99)), Some(&99));
    }

    /// Differential check against `HashMap` under a mixed workload, with
    /// sequential line addresses (the adversarial case for a weak mixer
    /// plus linear probing) and heavy deletion (exercising the
    /// backward-shift path, including clusters that wrap the table end).
    #[test]
    fn matches_hashmap_under_churn() {
        let mut t: LineTable<u64> = LineTable::new();
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for step in 0..50_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Small key space forces constant collisions and re-insertion
            // over freshly deleted slots.
            let line = (state >> 33) % 512;
            match state % 3 {
                0 => {
                    assert_eq!(t.insert(LineAddr(line), step), m.insert(line, step));
                }
                1 => {
                    assert_eq!(t.remove(LineAddr(line)), m.remove(&line));
                }
                _ => {
                    assert_eq!(t.get(LineAddr(line)), m.get(&line));
                    if let Some(v) = t.get_mut(LineAddr(line)) {
                        *v += 1;
                        *m.get_mut(&line).unwrap() += 1;
                    }
                }
            }
            assert_eq!(t.len(), m.len());
        }
        let mut got: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k.0, *v)).collect();
        let mut want: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
