//! Model-based property tests: `SetAssocCache` against a naive reference
//! implementation (per-set vectors with explicit LRU ordering).

use std::collections::HashMap;

use ccn_mem::{AccessKind, CacheGeometry, Eviction, LineAddr, LineState, SetAssocCache};
use proptest::prelude::*;

/// A deliberately slow but obviously correct reference cache.
struct RefCache {
    sets: u64,
    ways: usize,
    /// Per set: (line, state, payload), most-recently-used last.
    contents: HashMap<u64, Vec<(u64, LineState, u64)>>,
}

impl RefCache {
    fn new(geometry: CacheGeometry) -> Self {
        RefCache {
            sets: geometry.sets(),
            ways: geometry.ways as usize,
            contents: HashMap::new(),
        }
    }

    fn set_of(&self, line: u64) -> u64 {
        line % self.sets
    }

    fn state_of(&self, line: u64) -> LineState {
        self.contents
            .get(&self.set_of(line))
            .and_then(|s| s.iter().find(|(l, _, _)| *l == line))
            .map(|(_, st, _)| *st)
            .unwrap_or(LineState::Invalid)
    }

    fn access(&mut self, line: u64, kind: AccessKind) -> LineState {
        let set = self.set_of(line);
        let entries = self.contents.entry(set).or_default();
        if let Some(pos) = entries.iter().position(|(l, _, _)| *l == line) {
            let state = entries[pos].1;
            let hit = match kind {
                AccessKind::Read => state.readable(),
                AccessKind::Write => state.writable(),
            };
            if hit {
                let e = entries.remove(pos);
                entries.push(e); // MRU
            }
            state
        } else {
            LineState::Invalid
        }
    }

    fn fill(&mut self, line: u64, state: LineState, payload: u64) -> Option<Eviction> {
        let ways = self.ways;
        let set = self.set_of(line);
        let entries = self.contents.entry(set).or_default();
        assert!(entries.iter().all(|(l, _, _)| *l != line));
        let evicted = if entries.len() == ways {
            let (l, st, pl) = entries.remove(0); // LRU first
            Some(Eviction {
                line: LineAddr(l),
                state: st,
                payload: pl,
            })
        } else {
            None
        };
        entries.push((line, state, payload));
        evicted
    }

    fn invalidate(&mut self, line: u64) -> Option<(LineState, u64)> {
        let set = self.set_of(line);
        let entries = self.contents.get_mut(&set)?;
        let pos = entries.iter().position(|(l, _, _)| *l == line)?;
        let (_, st, pl) = entries.remove(pos);
        Some((st, pl))
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Access(u64, bool),
    Fill(u64, u8, u64),
    Invalidate(u64),
    SetState(u64, u8),
}

fn op_strategy(lines: u64) -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0..lines, any::<bool>()).prop_map(|(l, w)| CacheOp::Access(l, w)),
        (0..lines, 0u8..3, any::<u64>()).prop_map(|(l, s, p)| CacheOp::Fill(l, s, p)),
        (0..lines).prop_map(CacheOp::Invalidate),
        (0..lines, 0u8..3).prop_map(|(l, s)| CacheOp::SetState(l, s)),
    ]
}

fn state_from(code: u8) -> LineState {
    match code {
        0 => LineState::Shared,
        1 => LineState::Exclusive,
        _ => LineState::Modified,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn cache_matches_reference_model(ops in prop::collection::vec(op_strategy(64), 1..300)) {
        let geometry = CacheGeometry { size_bytes: 1024, line_bytes: 64, ways: 2 };
        let mut cache = SetAssocCache::new(geometry);
        let mut model = RefCache::new(geometry);
        for op in ops {
            match op {
                CacheOp::Access(l, write) => {
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    prop_assert_eq!(cache.access(LineAddr(l), kind), model.access(l, kind));
                }
                CacheOp::Fill(l, s, p) => {
                    if cache.state_of(LineAddr(l)) != LineState::Invalid {
                        continue; // fills pair with misses
                    }
                    let state = state_from(s);
                    let got = cache.fill(LineAddr(l), state, p);
                    let want = model.fill(l, state, p);
                    prop_assert_eq!(got, want, "evictions must match");
                }
                CacheOp::Invalidate(l) => {
                    prop_assert_eq!(cache.invalidate(LineAddr(l)), model.invalidate(l));
                }
                CacheOp::SetState(l, s) => {
                    if cache.state_of(LineAddr(l)) != LineState::Invalid {
                        let state = state_from(s);
                        cache.set_state(LineAddr(l), state);
                        let set = model.set_of(l);
                        let entries = model.contents.get_mut(&set).unwrap();
                        let pos = entries.iter().position(|(x, _, _)| *x == l).unwrap();
                        entries[pos].1 = state;
                    }
                }
            }
            // Spot-check agreement on every line we know about.
            for l in 0..64 {
                prop_assert_eq!(
                    cache.state_of(LineAddr(l)),
                    model.state_of(l),
                    "state divergence on line {}",
                    l
                );
            }
        }
    }

    #[test]
    fn resident_count_never_exceeds_capacity(ops in prop::collection::vec(op_strategy(256), 1..300)) {
        let geometry = CacheGeometry { size_bytes: 2048, line_bytes: 64, ways: 4 };
        let mut cache = SetAssocCache::new(geometry);
        let capacity = (geometry.size_bytes / geometry.line_bytes) as usize;
        for op in ops {
            if let CacheOp::Fill(l, s, p) = op {
                if cache.state_of(LineAddr(l)) == LineState::Invalid {
                    cache.fill(LineAddr(l), state_from(s), p);
                }
            }
            prop_assert!(cache.resident_lines() <= capacity);
        }
    }
}
