//! Model-based property tests: `SetAssocCache` against a naive reference
//! implementation (per-set vectors with explicit LRU ordering).
//!
//! Operation sequences are generated with the in-tree deterministic RNG,
//! so the suite is hermetic and every run replays the same cases.

use std::collections::HashMap;

use ccn_mem::{AccessKind, CacheGeometry, Eviction, LineAddr, LineState, SetAssocCache};
use ccn_sim::SplitMix64;

/// A deliberately slow but obviously correct reference cache.
struct RefCache {
    sets: u64,
    ways: usize,
    /// Per set: (line, state, payload), most-recently-used last.
    contents: HashMap<u64, Vec<(u64, LineState, u64)>>,
}

impl RefCache {
    fn new(geometry: CacheGeometry) -> Self {
        RefCache {
            sets: geometry.sets(),
            ways: geometry.ways as usize,
            contents: HashMap::new(),
        }
    }

    fn set_of(&self, line: u64) -> u64 {
        line % self.sets
    }

    fn state_of(&self, line: u64) -> LineState {
        self.contents
            .get(&self.set_of(line))
            .and_then(|s| s.iter().find(|(l, _, _)| *l == line))
            .map(|(_, st, _)| *st)
            .unwrap_or(LineState::Invalid)
    }

    fn access(&mut self, line: u64, kind: AccessKind) -> LineState {
        let set = self.set_of(line);
        let entries = self.contents.entry(set).or_default();
        if let Some(pos) = entries.iter().position(|(l, _, _)| *l == line) {
            let state = entries[pos].1;
            let hit = match kind {
                AccessKind::Read => state.readable(),
                AccessKind::Write => state.writable(),
            };
            if hit {
                let e = entries.remove(pos);
                entries.push(e); // MRU
            }
            state
        } else {
            LineState::Invalid
        }
    }

    fn fill(&mut self, line: u64, state: LineState, payload: u64) -> Option<Eviction> {
        let ways = self.ways;
        let set = self.set_of(line);
        let entries = self.contents.entry(set).or_default();
        assert!(entries.iter().all(|(l, _, _)| *l != line));
        let evicted = if entries.len() == ways {
            let (l, st, pl) = entries.remove(0); // LRU first
            Some(Eviction {
                line: LineAddr(l),
                state: st,
                payload: pl,
            })
        } else {
            None
        };
        entries.push((line, state, payload));
        evicted
    }

    fn invalidate(&mut self, line: u64) -> Option<(LineState, u64)> {
        let set = self.set_of(line);
        let entries = self.contents.get_mut(&set)?;
        let pos = entries.iter().position(|(l, _, _)| *l == line)?;
        let (_, st, pl) = entries.remove(pos);
        Some((st, pl))
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Access(u64, bool),
    Fill(u64, u8, u64),
    Invalidate(u64),
    SetState(u64, u8),
}

fn random_op(rng: &mut SplitMix64, lines: u64) -> CacheOp {
    match rng.next_below(4) {
        0 => CacheOp::Access(rng.next_below(lines), rng.chance(0.5)),
        1 => CacheOp::Fill(
            rng.next_below(lines),
            rng.next_below(3) as u8,
            rng.next_u64(),
        ),
        2 => CacheOp::Invalidate(rng.next_below(lines)),
        _ => CacheOp::SetState(rng.next_below(lines), rng.next_below(3) as u8),
    }
}

fn state_from(code: u8) -> LineState {
    match code {
        0 => LineState::Shared,
        1 => LineState::Exclusive,
        _ => LineState::Modified,
    }
}

#[test]
fn cache_matches_reference_model() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0xCAC4E + case);
        let n = 1 + rng.next_below(299) as usize;
        let geometry = CacheGeometry {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
        };
        let mut cache = SetAssocCache::new(geometry);
        let mut model = RefCache::new(geometry);
        for _ in 0..n {
            match random_op(&mut rng, 64) {
                CacheOp::Access(l, write) => {
                    let kind = if write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    assert_eq!(
                        cache.access(LineAddr(l), kind),
                        model.access(l, kind),
                        "case {case}"
                    );
                }
                CacheOp::Fill(l, s, p) => {
                    if cache.state_of(LineAddr(l)) != LineState::Invalid {
                        continue; // fills pair with misses
                    }
                    let state = state_from(s);
                    let got = cache.fill(LineAddr(l), state, p);
                    let want = model.fill(l, state, p);
                    assert_eq!(got, want, "case {case}: evictions must match");
                }
                CacheOp::Invalidate(l) => {
                    assert_eq!(
                        cache.invalidate(LineAddr(l)),
                        model.invalidate(l),
                        "case {case}"
                    );
                }
                CacheOp::SetState(l, s) => {
                    if cache.state_of(LineAddr(l)) != LineState::Invalid {
                        let state = state_from(s);
                        cache.set_state(LineAddr(l), state);
                        let set = model.set_of(l);
                        let entries = model.contents.get_mut(&set).unwrap();
                        let pos = entries.iter().position(|(x, _, _)| *x == l).unwrap();
                        entries[pos].1 = state;
                    }
                }
            }
            // Spot-check agreement on every line we know about.
            for l in 0..64 {
                assert_eq!(
                    cache.state_of(LineAddr(l)),
                    model.state_of(l),
                    "case {case}: state divergence on line {l}"
                );
            }
        }
    }
}

#[test]
fn resident_count_never_exceeds_capacity() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::new(0x0CCF + case);
        let n = 1 + rng.next_below(299) as usize;
        let geometry = CacheGeometry {
            size_bytes: 2048,
            line_bytes: 64,
            ways: 4,
        };
        let mut cache = SetAssocCache::new(geometry);
        let capacity = (geometry.size_bytes / geometry.line_bytes) as usize;
        for _ in 0..n {
            if let CacheOp::Fill(l, s, p) = random_op(&mut rng, 256) {
                if cache.state_of(LineAddr(l)) == LineState::Invalid {
                    cache.fill(LineAddr(l), state_from(s), p);
                }
            }
            assert!(cache.resident_lines() <= capacity, "case {case}");
        }
    }
}
