//! Scenario sweeps: harness integration and the conformance envelope.
//!
//! A scenario is one more independent job to the `ccn-harness` machinery:
//! [`run_scenario_conformance`] fans a spec out across all four controller
//! architectures through an ordinary [`Runner`] — worker pool, panic
//! isolation, JSON-lines checkpoints, optional metrics sidecars — and then
//! asserts the digest envelope: every architecture must produce a
//! bit-identical [`FunctionalSnapshot`] (the architectures differ in
//! *when* protocol work happens, never in *what* it computes; the spec's
//! scrub epilogue makes the end state timing-independent).

use std::path::Path;

use ccn_harness::Json;
use ccn_workloads::MachineShape;
use ccnuma::experiments::Options;
use ccnuma::{Architecture, FunctionalSnapshot, Machine, Runner, SweepRecord, SystemConfig};

use crate::scenario::Scenario;
use crate::spec::ScenarioSpec;

/// L2 override for scenario runs — the conformance setting: small enough
/// that the scrub flush is cheap and capacity evictions race mid-run.
pub const SCENARIO_L2_BYTES: u64 = 32 * 1024;

/// Event-count watchdog per run (converts a livelock into a job failure
/// the pool can isolate instead of a hang).
pub const SCENARIO_EVENT_LIMIT: u64 = 120_000_000;

/// The machine configuration scenario runs use.
pub fn scenario_config(arch: Architecture, nodes: usize, procs_per_node: usize) -> SystemConfig {
    SystemConfig::base()
        .with_nodes(nodes)
        .with_procs_per_node(procs_per_node)
        .with_architecture(arch)
        .with_l2_bytes(SCENARIO_L2_BYTES)
}

/// The workload-facing shape of a configuration.
pub fn shape_of(cfg: &SystemConfig) -> MachineShape {
    MachineShape {
        nodes: cfg.nodes,
        procs_per_node: cfg.procs_per_node,
        page_bytes: cfg.page_bytes,
        line_bytes: cfg.line_bytes,
    }
}

/// The outcome of one (scenario, architecture) run, reduced to a
/// checkpointable record. `digest`/`versions`/`memory`/`directory`
/// describe the functional snapshot and must agree across architectures;
/// the timing fields are architecture-dependent context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRecord {
    /// Scenario name.
    pub scenario: String,
    /// Architecture label (HWC/PPC/2HWC/2PPC).
    pub architecture: String,
    /// [`FunctionalSnapshot::digest`] of the end state.
    pub digest: u64,
    /// Written lines in the snapshot.
    pub versions: u64,
    /// Home-memory entries in the snapshot.
    pub memory: u64,
    /// Residual directory entries (zero after a scrubbed run).
    pub directory: u64,
    /// Measured-phase cycles (timing; excluded from conformance).
    pub exec_cycles: u64,
    /// Instructions executed in the measured phase.
    pub instructions: u64,
    /// Requests to all coherence controllers (timing-dependent).
    pub cc_arrivals: u64,
}

impl SweepRecord for ScenarioRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("architecture", Json::Str(self.architecture.clone())),
            ("digest", Json::UInt(self.digest)),
            ("versions", Json::UInt(self.versions)),
            ("memory", Json::UInt(self.memory)),
            ("directory", Json::UInt(self.directory)),
            ("exec_cycles", Json::UInt(self.exec_cycles)),
            ("instructions", Json::UInt(self.instructions)),
            ("cc_arrivals", Json::UInt(self.cc_arrivals)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(ScenarioRecord {
            scenario: v.get("scenario")?.as_str()?.to_string(),
            architecture: v.get("architecture")?.as_str()?.to_string(),
            digest: v.get("digest")?.as_u64()?,
            versions: v.get("versions")?.as_u64()?,
            memory: v.get("memory")?.as_u64()?,
            directory: v.get("directory")?.as_u64()?,
            exec_cycles: v.get("exec_cycles")?.as_u64()?,
            instructions: v.get("instructions")?.as_u64()?,
            cc_arrivals: v.get("cc_arrivals")?.as_u64()?,
        })
    }
}

/// The stable job id of one (scenario, architecture) cell. Embeds the
/// spec's content hash so an edited spec never replays a stale
/// checkpoint line.
pub fn scenario_job_id(
    spec: &ScenarioSpec,
    nodes: usize,
    procs_per_node: usize,
    arch: Architecture,
) -> String {
    format!(
        "scenario/{}@{:016x}/{}x{}/{}",
        spec.name,
        spec.content_hash(),
        nodes,
        procs_per_node,
        arch.name()
    )
}

/// Runs one (scenario, architecture) pair and returns the record plus
/// the full snapshot (for diffing on mismatch).
///
/// # Panics
///
/// Panics if the configuration is invalid, the run trips the event-limit
/// watchdog, or the machine fails its quiescence check — all workload or
/// simulator bugs a sweep should surface, not swallow.
pub fn run_scenario_case(
    scenario: &Scenario,
    arch: Architecture,
    nodes: usize,
    procs_per_node: usize,
) -> (ScenarioRecord, FunctionalSnapshot) {
    let cfg = scenario_config(arch, nodes, procs_per_node);
    let mut machine = Machine::new(cfg, scenario).expect("valid scenario config");
    let report = machine.run_with_event_limit(SCENARIO_EVENT_LIMIT);
    machine.check_quiescent().unwrap_or_else(|e| {
        panic!(
            "scenario '{}' on {}: invariant violated: {e}",
            scenario.spec.name,
            arch.name()
        )
    });
    let snap = machine.functional_snapshot();
    let rec = ScenarioRecord {
        scenario: scenario.spec.name.clone(),
        architecture: arch.name().to_string(),
        digest: snap.digest(),
        versions: snap.versions.len() as u64,
        memory: snap.memory.len() as u64,
        directory: snap.directory.len() as u64,
        exec_cycles: report.exec_cycles,
        instructions: report.instructions,
        cc_arrivals: report.cc_arrivals,
    };
    (rec, snap)
}

/// Runs `spec` across all four architectures on `runner` and checks the
/// digest envelope. With `metrics_dir` set, every simulated job writes a
/// latency-histogram sidecar named after its job id (deterministic, so
/// byte-identical regardless of worker count).
///
/// Returns the per-architecture records in [`Architecture::all`] order;
/// on a digest mismatch, re-runs the two disagreeing configurations and
/// returns the first field-level snapshot difference.
pub fn run_scenario_conformance(
    runner: &Runner,
    spec: &ScenarioSpec,
    metrics_dir: Option<&Path>,
) -> Result<Vec<ScenarioRecord>, String> {
    let opts: Options = runner.options();
    let (nodes, ppn) = (opts.nodes, opts.procs_per_node);
    let scenario = Scenario::new(spec.clone());
    spec.check_shape(&shape_of(&scenario_config(Architecture::Hwc, nodes, ppn)))
        .map_err(|e| {
            format!(
                "scenario '{}' does not fit a {nodes}x{ppn} machine: {e}",
                spec.name
            )
        })?;
    let jobs: Vec<(String, Architecture)> = Architecture::all()
        .iter()
        .map(|&arch| (scenario_job_id(spec, nodes, ppn, arch), arch))
        .collect();
    let metrics_dir = metrics_dir.map(Path::to_path_buf);
    let sim_threads = runner.sim_threads();
    let records: Vec<ScenarioRecord> = runner.run_keyed(jobs, |&arch| {
        let cfg = scenario_config(arch, nodes, ppn);
        let mut machine = Machine::new(cfg, &scenario).expect("valid scenario config");
        let report = machine.run_parallel_with_event_limit(sim_threads, SCENARIO_EVENT_LIMIT);
        machine.check_quiescent().unwrap_or_else(|e| {
            panic!(
                "scenario '{}' on {}: invariant violated: {e}",
                scenario.spec.name,
                arch.name()
            )
        });
        let snap = machine.functional_snapshot();
        if let Some(dir) = &metrics_dir {
            let id = scenario_job_id(&scenario.spec, nodes, ppn, arch);
            let payload = ccnuma::observe::report_metrics(&report);
            ccn_obs::write_sidecar(dir, &id, &payload)
                .unwrap_or_else(|e| panic!("writing metrics sidecar for {id}: {e}"));
        }
        ScenarioRecord {
            scenario: scenario.spec.name.clone(),
            architecture: arch.name().to_string(),
            digest: snap.digest(),
            versions: snap.versions.len() as u64,
            memory: snap.memory.len() as u64,
            directory: snap.directory.len() as u64,
            exec_cycles: report.exec_cycles,
            instructions: report.instructions,
            cc_arrivals: report.cc_arrivals,
        }
    });
    let base = &records[0];
    for rec in &records[1..] {
        if rec.digest != base.digest {
            let (_, a) = run_scenario_case(&scenario, Architecture::all()[0], nodes, ppn);
            let bad = Architecture::all()
                .into_iter()
                .find(|ar| ar.name() == rec.architecture)
                .expect("known architecture");
            let (_, b) = run_scenario_case(&scenario, bad, nodes, ppn);
            let detail = a
                .diff(&b)
                .unwrap_or_else(|| "digest mismatch but snapshots diff clean".to_string());
            return Err(format!(
                "scenario '{}': {} and {} disagree on the functional outcome: {detail}",
                spec.name, base.architecture, rec.architecture
            ));
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::parse_str(
            r#"{ "name": "sweeptest", "seed": 2, "phases": [
                { "kind": "uniform", "touches": 48, "region_bytes": 2048 },
                { "kind": "false_sharing", "touches": 24, "lines": 2 }
            ] }"#,
        )
        .unwrap()
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = ScenarioRecord {
            scenario: "s".into(),
            architecture: "2PPC".into(),
            digest: 0xFEED_F00D,
            versions: 3,
            memory: 4,
            directory: 0,
            exec_cycles: 99,
            instructions: 1234,
            cc_arrivals: 55,
        };
        let back = <ScenarioRecord as SweepRecord>::from_json(&SweepRecord::to_json(&rec)).unwrap();
        assert_eq!(back, rec);
        assert!(<ScenarioRecord as SweepRecord>::from_json(&Json::Null).is_none());
    }

    #[test]
    fn job_ids_track_spec_content() {
        let spec = tiny_spec();
        let id = scenario_job_id(&spec, 4, 2, Architecture::Hwc);
        assert!(id.starts_with("scenario/sweeptest@"), "{id}");
        assert!(id.ends_with("/4x2/HWC"), "{id}");
        let mut edited = spec.clone();
        edited.seed += 1;
        assert_ne!(id, scenario_job_id(&edited, 4, 2, Architecture::Hwc));
    }

    #[test]
    fn scrubbed_scenario_agrees_across_architectures() {
        let runner = Runner::sequential(Options::quick());
        let records =
            run_scenario_conformance(&runner, &tiny_spec(), None).expect("architectures agree");
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.digest == records[0].digest));
        assert!(
            records.iter().all(|r| r.directory == 0),
            "scrub left directory state"
        );
        assert!(records[0].versions > 0, "scenario never wrote");
    }

    #[test]
    fn oversized_node_list_is_a_recoverable_error() {
        let spec = ScenarioSpec::parse_str(
            r#"{ "name": "big", "phases": [ { "kind": "uniform", "nodes": [11] } ] }"#,
        )
        .unwrap();
        let runner = Runner::sequential(Options::quick());
        let err = run_scenario_conformance(&runner, &spec, None).unwrap_err();
        assert!(err.contains("does not fit"), "{err}");
    }
}
