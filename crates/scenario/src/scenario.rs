//! Lowering a parsed spec into a machine workload.
//!
//! [`Scenario`] implements [`Application`]: phases compile in order into
//! per-processor segment programs separated by machine-global barriers,
//! with barrier and lock ids allocated from a single fresh counter so no
//! phase can collide with another. When the spec's `scrub` flag is on
//! (the default) the scenario appends the same deterministic epilogue the
//! `ccn-verify` conformance suite uses — every processor flushes its
//! cache by walking a private home-local scratch region, then processor 0
//! rewrites and flushes every shared region — leaving a functional
//! snapshot that is bit-identical across all four controller
//! architectures.

use ccn_workloads::{Access, AddressSpace, AppBuild, Application, MachineShape, Segment};

use crate::phase::LowerCtx;
use crate::spec::ScenarioSpec;
use crate::sweep::SCENARIO_L2_BYTES;

/// A spec bound to an L2 capacity, ready to run as an [`Application`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The validated spec.
    pub spec: ScenarioSpec,
    /// The L2 capacity of the machine that will run this scenario; the
    /// scrub epilogue's flush walks 2× this.
    pub l2_bytes: u64,
}

impl Scenario {
    /// Wraps a spec with the default conformance L2 capacity.
    pub fn new(spec: ScenarioSpec) -> Scenario {
        Scenario {
            spec,
            l2_bytes: SCENARIO_L2_BYTES,
        }
    }

    /// Wraps a spec with an explicit L2 capacity (must match the machine
    /// config, or the flush epilogue cannot guarantee full eviction).
    pub fn with_l2(spec: ScenarioSpec, l2_bytes: u64) -> Scenario {
        Scenario { spec, l2_bytes }
    }
}

impl Application for Scenario {
    fn name(&self) -> String {
        format!("scenario-{}", self.spec.name)
    }

    /// # Panics
    ///
    /// Panics if the spec fails its shape check (an explicit node list
    /// naming nodes the machine does not have). Run
    /// [`ScenarioSpec::check_shape`] first for a recoverable error.
    fn build(&self, shape: &MachineShape) -> AppBuild {
        if let Err(e) = self.spec.check_shape(shape) {
            panic!(
                "scenario '{}' does not fit the machine: {e}",
                self.spec.name
            );
        }
        let nprocs = shape.nprocs();
        let mut space = AddressSpace::new(shape.page_bytes);
        let mut next_barrier = 1u32; // 0 is the conventional start barrier
        let mut next_lock = 0u32;
        let mut scrub_regions: Vec<(u64, u64)> = Vec::new();
        let mut programs: Vec<Vec<Segment>> =
            vec![vec![Segment::Barrier(0), Segment::StartMeasurement]; nprocs];
        for (i, phase) in self.spec.phases.iter().enumerate() {
            let participants = phase.nodes.procs(shape);
            let phase_progs = {
                let mut ctx = LowerCtx {
                    shape,
                    space: &mut space,
                    next_barrier: &mut next_barrier,
                    next_lock: &mut next_lock,
                    scrub: &mut scrub_regions,
                };
                phase.kind.compile(
                    &mut ctx,
                    &participants,
                    self.spec.phase_seed(i),
                    phase.intensity,
                )
            };
            let end = next_barrier;
            next_barrier += 1;
            for (prog, phase_prog) in programs.iter_mut().zip(phase_progs) {
                prog.extend(phase_prog);
                prog.push(Segment::Barrier(end));
            }
        }
        if self.spec.scrub {
            append_scrub(
                &mut programs,
                &mut space,
                shape,
                &scrub_regions,
                &mut next_barrier,
                self.l2_bytes,
            );
        }
        AppBuild {
            programs,
            placements: space.into_placements(),
        }
    }
}

/// Appends the deterministic scrub epilogue (the `ccn-verify` ConfApp
/// pattern): flush everyone, have processor 0 rewrite every shared
/// region line, flush processor 0 again — all barrier-separated — so the
/// final functional snapshot is architecture-independent.
fn append_scrub(
    programs: &mut [Vec<Segment>],
    space: &mut AddressSpace,
    shape: &MachineShape,
    regions: &[(u64, u64)],
    next_barrier: &mut u32,
    l2_bytes: u64,
) {
    let nprocs = programs.len();
    // Private, home-local scratch: walking 2× the L2 evicts every prior
    // occupant of every set without creating directory state.
    let flush_bytes = 2 * l2_bytes;
    let scratch: Vec<u64> = (0..nprocs)
        .map(|p| space.alloc_at(flush_bytes, shape.node_of(p) as u16))
        .collect();
    let scratch2 = space.alloc_at(flush_bytes, shape.node_of(0) as u16);
    let flush = |base: u64| Segment::Walk {
        base,
        bytes: flush_bytes,
        stride: shape.line_bytes as u32,
        access: Access::Read,
        work: 0,
    };
    let mut fresh = || {
        let id = *next_barrier;
        *next_barrier += 1;
        id
    };
    let barriers = [fresh(), fresh(), fresh(), fresh()];
    for (p, prog) in programs.iter_mut().enumerate() {
        prog.push(Segment::Barrier(barriers[0]));
        prog.push(flush(scratch[p]));
        prog.push(Segment::Barrier(barriers[1]));
        if p == 0 {
            for &(base, bytes) in regions {
                // Round up to whole lines so even a sub-line region's
                // line is rewritten (allocations are page-granular, so
                // the rounding stays inside the region's pages).
                let lines = bytes.div_ceil(shape.line_bytes);
                prog.push(Segment::Walk {
                    base,
                    bytes: lines * shape.line_bytes,
                    stride: shape.line_bytes as u32,
                    access: Access::Write,
                    work: 0,
                });
            }
        }
        prog.push(Segment::Barrier(barriers[2]));
        if p == 0 {
            prog.push(flush(scratch2));
        }
        prog.push(Segment::Barrier(barriers[3]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> MachineShape {
        MachineShape {
            nodes: 4,
            procs_per_node: 2,
            page_bytes: 4096,
            line_bytes: 128,
        }
    }

    const SPEC: &str = r#"{
        "name": "mix",
        "seed": 11,
        "phases": [
            { "kind": "uniform", "touches": 64 },
            { "kind": "ring", "laps": 2, "slot_bytes": 64 },
            { "kind": "lock_convoy", "rounds": 4, "nodes": "even" },
            { "kind": "private", "sweeps": 1, "bytes_per_proc": 256 }
        ]
    }"#;

    fn build() -> AppBuild {
        let spec = ScenarioSpec::parse_str(SPEC).unwrap();
        Scenario::new(spec).build(&shape())
    }

    #[test]
    fn build_is_deterministic() {
        let a = build();
        let b = build();
        assert_eq!(a.programs, b.programs);
        assert_eq!(a.placements, b.placements);
    }

    #[test]
    fn every_processor_sees_the_same_barrier_sequence() {
        let build = build();
        let barriers: Vec<Vec<u32>> = build
            .programs
            .iter()
            .map(|prog| {
                prog.iter()
                    .filter_map(|s| match s {
                        Segment::Barrier(id) => Some(*id),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for b in &barriers[1..] {
            assert_eq!(b, &barriers[0], "barrier sequences diverge");
        }
        assert!(barriers[0].len() >= 4 + 4, "phases + scrub barriers");
    }

    #[test]
    fn programs_start_with_the_convention() {
        for prog in build().programs {
            assert_eq!(prog[0], Segment::Barrier(0));
            assert_eq!(prog[1], Segment::StartMeasurement);
        }
    }

    #[test]
    fn scrub_off_drops_the_epilogue() {
        let spec = ScenarioSpec::parse_str(
            r#"{ "name": "raw", "scrub": false,
                 "phases": [ { "kind": "uniform", "touches": 16 } ] }"#,
        )
        .unwrap();
        let with = Scenario::new(spec.clone());
        let without = {
            let mut s = spec;
            s.scrub = true;
            Scenario::new(s)
        };
        let a = with.build(&shape());
        let b = without.build(&shape());
        assert!(a.programs[0].len() < b.programs[0].len());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn shape_mismatch_panics_with_context() {
        let spec = ScenarioSpec::parse_str(
            r#"{ "name": "big", "phases": [ { "kind": "uniform", "nodes": [63] } ] }"#,
        )
        .unwrap();
        Scenario::new(spec).build(&shape());
    }
}
