//! Binary access-trace capture and byte-for-byte replay.
//!
//! [`record`] expands any [`Application`]'s segment programs into the
//! exact per-processor [`Op`] streams the simulator would execute and
//! packs them into a compact, versioned binary file:
//!
//! ```text
//! magic "CCNT" | version u16 LE | flags u16 LE
//! name         (varint length + UTF-8 bytes)
//! shape        (varint nodes, procs/node, page bytes, line bytes)
//! placements   (varint count, then varint page address + varint node)
//! streams      (varint count = nprocs, then per processor:
//!               varint op count + encoded ops)
//! ```
//!
//! Ops are one tag byte plus a varint payload; `Read`/`Write` addresses
//! are zigzag-encoded deltas against the processor's previous address,
//! so strided walks cost ~2 bytes per reference. All integers are
//! LEB128; the format has no alignment requirements.
//!
//! [`TraceReplay`] turns a trace back into an [`Application`] whose
//! expansion reproduces the recorded op streams *exactly* (each op maps
//! to a `Touch`/`Compute`/sync segment that expands back to itself), so
//! a replayed run's `SimReport` equals the original's.

use std::fmt;
use std::path::Path;

use ccn_workloads::{Access, AppBuild, Application, MachineShape, Op, Segment, SegmentProgram};

/// File magic: "CCNT" (CC-NUMA trace).
pub const TRACE_MAGIC: [u8; 4] = *b"CCNT";
/// Current format version.
pub const TRACE_VERSION: u16 = 1;

/// A trace IO or format error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    message: String,
}

impl TraceError {
    fn new(message: impl Into<String>) -> Self {
        TraceError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TraceError {}

/// A recorded workload: the machine shape it was captured on, its page
/// placements, and one op stream per processor.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The recorded application's name (replay reports reuse it, so a
    /// replayed run's report compares equal to the original's).
    pub name: String,
    /// The machine shape the trace was captured on; replay requires the
    /// same shape.
    pub shape: MachineShape,
    /// Page placements (`(page address, home node)`).
    pub placements: Vec<(u64, u16)>,
    /// One operation stream per processor.
    pub ops: Vec<Vec<Op>>,
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked byte cursor.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| TraceError::new("trace is truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.take(1)?[0];
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceError::new("varint is longer than 64 bits"))
    }
}

const TAG_READ: u8 = 0x01;
const TAG_WRITE: u8 = 0x02;
const TAG_COMPUTE: u8 = 0x03;
const TAG_BARRIER: u8 = 0x04;
const TAG_LOCK: u8 = 0x05;
const TAG_UNLOCK: u8 = 0x06;
const TAG_START: u8 = 0x07;

impl Trace {
    /// Total op count across all processors.
    pub fn op_count(&self) -> u64 {
        self.ops.iter().map(|s| s.len() as u64).sum()
    }

    /// Serializes the trace to its binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.op_count() as usize * 2);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags
        write_varint(&mut out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
        write_varint(&mut out, self.shape.nodes as u64);
        write_varint(&mut out, self.shape.procs_per_node as u64);
        write_varint(&mut out, self.shape.page_bytes);
        write_varint(&mut out, self.shape.line_bytes);
        write_varint(&mut out, self.placements.len() as u64);
        for &(page, node) in &self.placements {
            write_varint(&mut out, page);
            write_varint(&mut out, node as u64);
        }
        write_varint(&mut out, self.ops.len() as u64);
        for stream in &self.ops {
            write_varint(&mut out, stream.len() as u64);
            let mut prev = 0u64;
            for &op in stream {
                match op {
                    Op::Read(addr) | Op::Write(addr) => {
                        out.push(if matches!(op, Op::Read(_)) {
                            TAG_READ
                        } else {
                            TAG_WRITE
                        });
                        // Wrapping delta + zigzag: lossless for any u64
                        // address, ~2 bytes for strided walks.
                        write_varint(&mut out, zigzag(addr.wrapping_sub(prev) as i64));
                        prev = addr;
                    }
                    Op::Compute(cycles) => {
                        out.push(TAG_COMPUTE);
                        write_varint(&mut out, cycles as u64);
                    }
                    Op::Barrier(id) => {
                        out.push(TAG_BARRIER);
                        write_varint(&mut out, id as u64);
                    }
                    Op::Lock(id) => {
                        out.push(TAG_LOCK);
                        write_varint(&mut out, id as u64);
                    }
                    Op::Unlock(id) => {
                        out.push(TAG_UNLOCK);
                        write_varint(&mut out, id as u64);
                    }
                    Op::StartMeasurement => out.push(TAG_START),
                }
            }
        }
        out
    }

    /// Parses a trace from its binary form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != TRACE_MAGIC {
            return Err(TraceError::new("not a CCNT trace (bad magic)"));
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().expect("two bytes"));
        if version != TRACE_VERSION {
            return Err(TraceError::new(format!(
                "unsupported trace version {version} (this build reads {TRACE_VERSION})"
            )));
        }
        let _flags = u16::from_le_bytes(r.take(2)?.try_into().expect("two bytes"));
        let name_len = r.varint()? as usize;
        if name_len > 4096 {
            return Err(TraceError::new("trace name is implausibly long"));
        }
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| TraceError::new("trace name is not UTF-8"))?
            .to_string();
        let shape = MachineShape {
            nodes: r.varint()? as usize,
            procs_per_node: r.varint()? as usize,
            page_bytes: r.varint()?,
            line_bytes: r.varint()?,
        };
        if shape.nodes == 0
            || shape.procs_per_node == 0
            || shape.nprocs() > 1 << 16
            || !shape.page_bytes.is_power_of_two()
            || shape.line_bytes == 0
        {
            return Err(TraceError::new("trace header has an invalid shape"));
        }
        let n_place = r.varint()? as usize;
        if n_place > bytes.len() {
            return Err(TraceError::new("trace is truncated (placements)"));
        }
        let mut placements = Vec::with_capacity(n_place);
        for _ in 0..n_place {
            let page = r.varint()?;
            let node = r.varint()?;
            if node as usize >= shape.nodes {
                return Err(TraceError::new(format!(
                    "placement names node {node} on a {}-node machine",
                    shape.nodes
                )));
            }
            placements.push((page, node as u16));
        }
        let n_streams = r.varint()? as usize;
        if n_streams != shape.nprocs() {
            return Err(TraceError::new(format!(
                "trace has {n_streams} op streams but the shape has {} processors",
                shape.nprocs()
            )));
        }
        let mut ops = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            let count = r.varint()? as usize;
            if count > bytes.len() {
                return Err(TraceError::new("trace is truncated (op stream)"));
            }
            let mut stream = Vec::with_capacity(count);
            let mut prev = 0u64;
            for _ in 0..count {
                let tag = r.take(1)?[0];
                let op = match tag {
                    TAG_READ | TAG_WRITE => {
                        let addr = prev.wrapping_add(unzigzag(r.varint()?) as u64);
                        prev = addr;
                        if tag == TAG_READ {
                            Op::Read(addr)
                        } else {
                            Op::Write(addr)
                        }
                    }
                    TAG_COMPUTE => {
                        let cycles = r.varint()?;
                        if cycles > u32::MAX as u64 {
                            return Err(TraceError::new("compute op exceeds u32 cycles"));
                        }
                        Op::Compute(cycles as u32)
                    }
                    TAG_BARRIER => Op::Barrier(checked_id(r.varint()?)?),
                    TAG_LOCK => Op::Lock(checked_id(r.varint()?)?),
                    TAG_UNLOCK => Op::Unlock(checked_id(r.varint()?)?),
                    TAG_START => Op::StartMeasurement,
                    other => return Err(TraceError::new(format!("unknown op tag {other:#04x}"))),
                };
                stream.push(op);
            }
            ops.push(stream);
        }
        if r.pos != bytes.len() {
            return Err(TraceError::new("trailing bytes after the last op stream"));
        }
        Ok(Trace {
            name,
            shape,
            placements,
            ops,
        })
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| TraceError::new(format!("writing {}: {e}", path.display())))
    }

    /// Reads a trace from a file.
    pub fn load(path: &Path) -> Result<Trace, TraceError> {
        let bytes = std::fs::read(path)
            .map_err(|e| TraceError::new(format!("reading {}: {e}", path.display())))?;
        Trace::from_bytes(&bytes)
    }
}

fn checked_id(v: u64) -> Result<u32, TraceError> {
    u32::try_from(v).map_err(|_| TraceError::new("sync id exceeds u32"))
}

/// Expands `app` on `shape` and captures its exact op streams.
///
/// # Panics
///
/// Panics if the application's `build` panics (shape mismatch etc.).
pub fn record(app: &dyn Application, shape: &MachineShape) -> Trace {
    record_with_limit(app, shape, u64::MAX).expect("unlimited record cannot overflow")
}

/// Like [`record`], but fails once the total op count across all
/// processors exceeds `max_ops` (protection against tracing a workload
/// too large to hold in memory).
pub fn record_with_limit(
    app: &dyn Application,
    shape: &MachineShape,
    max_ops: u64,
) -> Result<Trace, TraceError> {
    let build = app.build(shape);
    let mut total = 0u64;
    let mut ops = Vec::with_capacity(build.programs.len());
    for segments in build.programs {
        let mut program = SegmentProgram::new(segments);
        let mut stream = Vec::new();
        while let Some(op) = program.next_op() {
            total += 1;
            if total > max_ops {
                return Err(TraceError::new(format!(
                    "workload exceeds the {max_ops}-op trace limit"
                )));
            }
            stream.push(op);
        }
        ops.push(stream);
    }
    Ok(Trace {
        name: app.name(),
        shape: *shape,
        placements: build.placements,
        ops,
    })
}

/// An [`Application`] that replays a recorded trace byte-for-byte.
///
/// Each recorded op maps to the unique segment that expands back to
/// exactly that op, so the replayed run issues the identical instruction
/// stream — and, on the same config, produces the identical `SimReport`
/// — as the original.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
}

impl TraceReplay {
    /// Wraps a loaded trace for replay.
    pub fn new(trace: Trace) -> TraceReplay {
        TraceReplay { trace }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl Application for TraceReplay {
    fn name(&self) -> String {
        self.trace.name.clone()
    }

    /// # Panics
    ///
    /// Panics if `shape` differs from the shape the trace was recorded
    /// on — a trace is only meaningful on its own machine geometry.
    fn build(&self, shape: &MachineShape) -> AppBuild {
        assert_eq!(
            *shape, self.trace.shape,
            "trace '{}' was recorded on a different machine shape",
            self.trace.name
        );
        let programs = self
            .trace
            .ops
            .iter()
            .map(|stream| {
                stream
                    .iter()
                    .map(|&op| match op {
                        Op::Read(addr) => Segment::Touch {
                            addr,
                            access: Access::Read,
                        },
                        Op::Write(addr) => Segment::Touch {
                            addr,
                            access: Access::Write,
                        },
                        Op::Compute(cycles) => Segment::Compute(cycles as u64),
                        Op::Barrier(id) => Segment::Barrier(id),
                        Op::Lock(id) => Segment::Lock(id),
                        Op::Unlock(id) => Segment::Unlock(id),
                        Op::StartMeasurement => Segment::StartMeasurement,
                    })
                    .collect()
            })
            .collect();
        AppBuild {
            programs,
            placements: self.trace.placements.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::spec::ScenarioSpec;

    fn shape() -> MachineShape {
        MachineShape {
            nodes: 2,
            procs_per_node: 2,
            page_bytes: 4096,
            line_bytes: 128,
        }
    }

    fn small_scenario() -> Scenario {
        Scenario::new(
            ScenarioSpec::parse_str(
                r#"{ "name": "trc", "seed": 3, "phases": [
                    { "kind": "uniform", "touches": 32, "region_bytes": 1024 },
                    { "kind": "migratory", "hops": 3, "objects": 2 }
                ] }"#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut r = Reader {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn trace_round_trips_through_bytes() {
        let trace = record(&small_scenario(), &shape());
        let back = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn replay_expands_to_the_recorded_stream() {
        let sh = shape();
        let trace = record(&small_scenario(), &sh);
        let replayed = record(&TraceReplay::new(trace.clone()), &sh);
        assert_eq!(replayed.ops, trace.ops);
        assert_eq!(replayed.placements, trace.placements);
        assert_eq!(replayed.name, trace.name);
    }

    #[test]
    fn corrupt_inputs_error_instead_of_panicking() {
        assert!(Trace::from_bytes(b"").is_err());
        assert!(Trace::from_bytes(b"NOPE").is_err());
        let mut bytes = record(&small_scenario(), &shape()).to_bytes();
        bytes[4] = 0xFF; // version
        assert!(Trace::from_bytes(&bytes).is_err());
        let good = record(&small_scenario(), &shape()).to_bytes();
        assert!(Trace::from_bytes(&good[..good.len() - 3]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Trace::from_bytes(&trailing).is_err());
    }

    #[test]
    fn record_limit_is_enforced() {
        let err = record_with_limit(&small_scenario(), &shape(), 10).unwrap_err();
        assert!(err.to_string().contains("trace limit"), "{err}");
    }

    #[test]
    #[should_panic(expected = "different machine shape")]
    fn replay_on_the_wrong_shape_panics() {
        let trace = record(&small_scenario(), &shape());
        let other = MachineShape {
            nodes: 4,
            ..shape()
        };
        TraceReplay::new(trace).build(&other);
    }
}
