//! The scenario spec format: JSON surface, validation, canonical form.
//!
//! A spec is one JSON object (parsed with the same in-tree
//! [`ccn_harness::json`] subset the checkpoint layer uses — no registry
//! dependencies):
//!
//! ```json
//! {
//!   "name": "kv-readheavy",
//!   "description": "a million readers hammering a shared KV table",
//!   "seed": 42,
//!   "phases": [
//!     { "kind": "kv_lookup", "keys": 256, "write_percent": 5 },
//!     { "kind": "false_sharing", "nodes": "even", "intensity": 2.0 }
//!   ]
//! }
//! ```
//!
//! Phases run in order, separated by global barriers. Each phase carries a
//! typed parameter set (see [`crate::phase`] for the catalog and
//! defaults), a node-set selector choosing which nodes' processors
//! participate, an intensity multiplier scaling its touch counts, and an
//! optional seed override. Unknown keys — top-level or per-phase — are
//! rejected, as are out-of-range values (percentages above 100, zero
//! counts, absurd sizes), so a typo fails at parse time instead of
//! silently simulating the wrong experiment.

use std::fmt;

use ccn_harness::{json, Json};
use ccn_workloads::MachineShape;

use crate::phase::PhaseKind;

/// Maximum phases per spec (keeps barrier-id bookkeeping trivially safe).
pub const MAX_PHASES: usize = 64;

/// A spec-validation or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpecError {}

/// Which nodes' processors participate in a phase. Non-participants still
/// arrive at the phase's barriers (barriers are machine-global) but issue
/// no memory traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSet {
    /// Every node (the default).
    All,
    /// Even-numbered nodes.
    Even,
    /// Odd-numbered nodes.
    Odd,
    /// The first half of the nodes (at least one).
    Half,
    /// An explicit list of node indices.
    List(Vec<u16>),
}

impl NodeSet {
    /// Parses the `"nodes"` field.
    pub fn parse(v: &Json) -> Result<NodeSet, SpecError> {
        match v {
            Json::Str(s) => match s.as_str() {
                "all" => Ok(NodeSet::All),
                "even" => Ok(NodeSet::Even),
                "odd" => Ok(NodeSet::Odd),
                "half" => Ok(NodeSet::Half),
                other => Err(SpecError::new(format!(
                    "unknown node set '{other}' (known: all, even, odd, half, or a list of node indices)"
                ))),
            },
            Json::Arr(items) => {
                if items.is_empty() {
                    return Err(SpecError::new("node list must not be empty"));
                }
                let mut nodes = Vec::with_capacity(items.len());
                for item in items {
                    let n = item
                        .as_u64()
                        .ok_or_else(|| SpecError::new("node list entries must be integers"))?;
                    if n >= 1024 {
                        return Err(SpecError::new(format!("node index {n} is out of range")));
                    }
                    nodes.push(n as u16);
                }
                nodes.sort_unstable();
                nodes.dedup();
                Ok(NodeSet::List(nodes))
            }
            _ => Err(SpecError::new(
                "'nodes' must be a string selector or a list of node indices",
            )),
        }
    }

    /// The canonical JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            NodeSet::All => Json::Str("all".into()),
            NodeSet::Even => Json::Str("even".into()),
            NodeSet::Odd => Json::Str("odd".into()),
            NodeSet::Half => Json::Str("half".into()),
            NodeSet::List(nodes) => {
                Json::Arr(nodes.iter().map(|&n| Json::UInt(n as u64)).collect())
            }
        }
    }

    /// The participating processor indices on `shape`, in ascending order.
    pub fn procs(&self, shape: &MachineShape) -> Vec<usize> {
        let node_in = |node: usize| match self {
            NodeSet::All => true,
            NodeSet::Even => node.is_multiple_of(2),
            NodeSet::Odd => !node.is_multiple_of(2),
            NodeSet::Half => node < shape.nodes.div_ceil(2),
            NodeSet::List(nodes) => nodes.contains(&(node as u16)),
        };
        (0..shape.nprocs())
            .filter(|&p| node_in(shape.node_of(p)))
            .collect()
    }

    /// Checks the selector against a concrete machine shape (explicit
    /// lists may name nodes the machine does not have).
    pub fn check(&self, shape: &MachineShape) -> Result<(), SpecError> {
        if let NodeSet::List(nodes) = self {
            for &n in nodes {
                if (n as usize) >= shape.nodes {
                    return Err(SpecError::new(format!(
                        "node {n} does not exist on a {}-node machine",
                        shape.nodes
                    )));
                }
            }
        }
        if self.procs(shape).is_empty() {
            return Err(SpecError::new("node set selects no processors"));
        }
        Ok(())
    }
}

/// One phase of a scenario: a typed traffic pattern plus the common knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// The traffic pattern and its parameters.
    pub kind: PhaseKind,
    /// Which nodes participate.
    pub nodes: NodeSet,
    /// Multiplier on the phase's touch counts (0.01–1000).
    pub intensity: f64,
    /// Per-phase seed override; defaults to a value derived from the
    /// spec seed and the phase index.
    pub seed: Option<u64>,
}

impl PhaseSpec {
    fn parse(v: &Json, index: usize) -> Result<PhaseSpec, SpecError> {
        let Json::Obj(map) = v else {
            return Err(SpecError::new(format!("phase {index} must be an object")));
        };
        let kind_name = map
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new(format!("phase {index} is missing a 'kind' string")))?;
        let kind = PhaseKind::from_obj(kind_name, map)
            .map_err(|e| SpecError::new(format!("phase {index} ({kind_name}): {e}")))?;
        let nodes = match map.get("nodes") {
            Some(v) => NodeSet::parse(v)
                .map_err(|e| SpecError::new(format!("phase {index} ({kind_name}): {e}")))?,
            None => NodeSet::All,
        };
        let intensity = match map.get("intensity") {
            Some(v) => v.as_f64().ok_or_else(|| {
                SpecError::new(format!(
                    "phase {index} ({kind_name}): 'intensity' must be a number"
                ))
            })?,
            None => 1.0,
        };
        if !(0.01..=1000.0).contains(&intensity) {
            return Err(SpecError::new(format!(
                "phase {index} ({kind_name}): intensity {intensity} is outside 0.01..=1000"
            )));
        }
        let seed = match map.get("seed") {
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                SpecError::new(format!(
                    "phase {index} ({kind_name}): 'seed' must be a non-negative integer"
                ))
            })?),
            None => None,
        };
        // Reject unknown keys so typos fail loudly.
        let known = ["kind", "nodes", "intensity", "seed"];
        for key in map.keys() {
            if !known.contains(&key.as_str()) && !kind.knows_key(key) {
                return Err(SpecError::new(format!(
                    "phase {index} ({kind_name}): unknown key '{key}' (known: {})",
                    kind.known_keys().join(", ")
                )));
            }
        }
        Ok(PhaseSpec {
            kind,
            nodes,
            intensity,
            seed,
        })
    }

    /// The canonical JSON form (defaults resolved).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("kind", Json::Str(self.kind.name().to_string())),
            ("nodes", self.nodes.to_json()),
            ("intensity", Json::Num(self.intensity)),
        ];
        if let Some(seed) = self.seed {
            pairs.push(("seed", Json::UInt(seed)));
        }
        pairs.extend(self.kind.params_to_json());
        Json::obj(pairs)
    }

    /// Scales a touch count by the phase intensity (at least 1).
    pub fn scaled(&self, count: u32) -> u32 {
        ((count as f64 * self.intensity) as u32).max(1)
    }
}

/// A parsed, validated scenario spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Short identifier (used in job ids, checkpoint files, trace names).
    pub name: String,
    /// One-line description for `repro scenario list`.
    pub description: String,
    /// Master seed; each phase derives its own stream from it.
    pub seed: u64,
    /// Whether to append the deterministic scrub epilogue that makes the
    /// end state architecture-independent (default true; turning it off
    /// forfeits cross-architecture digest comparison).
    pub scrub: bool,
    /// The barrier-separated phases, in execution order.
    pub phases: Vec<PhaseSpec>,
}

impl ScenarioSpec {
    /// Parses and validates a spec from JSON text.
    pub fn parse_str(text: &str) -> Result<ScenarioSpec, SpecError> {
        let v = json::parse(text).map_err(|e| SpecError::new(format!("invalid JSON: {e}")))?;
        ScenarioSpec::parse(&v)
    }

    /// Parses and validates a spec from a JSON value.
    pub fn parse(v: &Json) -> Result<ScenarioSpec, SpecError> {
        let Json::Obj(map) = v else {
            return Err(SpecError::new("a scenario spec must be a JSON object"));
        };
        for key in map.keys() {
            if !["name", "description", "seed", "scrub", "phases"].contains(&key.as_str()) {
                return Err(SpecError::new(format!(
                    "unknown top-level key '{key}' (known: name, description, seed, scrub, phases)"
                )));
            }
        }
        let name = map
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("spec is missing a 'name' string"))?
            .to_string();
        if name.is_empty() || name.len() > 64 {
            return Err(SpecError::new("'name' must be 1-64 characters"));
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(SpecError::new(
                "'name' may only contain letters, digits, '-', '_' and '.'",
            ));
        }
        let description = map
            .get("description")
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| SpecError::new("'description' must be a string"))
            })
            .transpose()?
            .unwrap_or_default();
        let seed = match map.get("seed") {
            Some(v) => v
                .as_u64()
                .ok_or_else(|| SpecError::new("'seed' must be a non-negative integer"))?,
            None => 1,
        };
        let scrub = match map.get("scrub") {
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(SpecError::new("'scrub' must be a boolean")),
            None => true,
        };
        let Some(Json::Arr(phase_values)) = map.get("phases") else {
            return Err(SpecError::new("spec is missing a 'phases' array"));
        };
        if phase_values.is_empty() {
            return Err(SpecError::new("'phases' must contain at least one phase"));
        }
        if phase_values.len() > MAX_PHASES {
            return Err(SpecError::new(format!(
                "too many phases ({}, maximum {MAX_PHASES})",
                phase_values.len()
            )));
        }
        let phases = phase_values
            .iter()
            .enumerate()
            .map(|(i, v)| PhaseSpec::parse(v, i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ScenarioSpec {
            name,
            description,
            seed,
            scrub,
            phases,
        })
    }

    /// The canonical JSON form: defaults resolved, keys sorted. Parsing
    /// the rendered form yields an equal spec.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("description", Json::Str(self.description.clone())),
            ("seed", Json::UInt(self.seed)),
            ("scrub", Json::Bool(self.scrub)),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseSpec::to_json).collect()),
            ),
        ])
    }

    /// FNV-1a hash of the canonical form. Job ids and checkpoint files
    /// embed this so an edited spec never replays a stale checkpoint.
    pub fn content_hash(&self) -> u64 {
        let text = self.to_json().to_string();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// The seed phase `index` compiles with (explicit override, or derived
    /// from the master seed and the phase index).
    pub fn phase_seed(&self, index: usize) -> u64 {
        self.phases[index].seed.unwrap_or_else(|| {
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index as u64 + 1)
        })
    }

    /// Checks shape-dependent constraints (explicit node lists, empty
    /// participant sets) against a concrete machine.
    pub fn check_shape(&self, shape: &MachineShape) -> Result<(), SpecError> {
        for (i, phase) in self.phases.iter().enumerate() {
            phase
                .nodes
                .check(shape)
                .map_err(|e| SpecError::new(format!("phase {i} ({}): {e}", phase.kind.name())))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> MachineShape {
        MachineShape {
            nodes: 4,
            procs_per_node: 2,
            page_bytes: 4096,
            line_bytes: 128,
        }
    }

    const MINIMAL: &str = r#"{
        "name": "t",
        "phases": [ { "kind": "uniform" } ]
    }"#;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = ScenarioSpec::parse_str(MINIMAL).unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.seed, 1);
        assert!(spec.scrub);
        assert_eq!(spec.phases.len(), 1);
        assert_eq!(spec.phases[0].nodes, NodeSet::All);
        assert_eq!(spec.phases[0].intensity, 1.0);
    }

    #[test]
    fn canonical_form_round_trips() {
        let spec = ScenarioSpec::parse_str(
            r#"{ "name": "rt", "seed": 9, "phases": [
                { "kind": "kv_lookup", "nodes": "even", "intensity": 2.5, "seed": 7 },
                { "kind": "ring", "nodes": [0, 2] }
            ] }"#,
        )
        .unwrap();
        let back = ScenarioSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.content_hash(), spec.content_hash());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let top = r#"{ "name": "t", "typo": 1, "phases": [ { "kind": "uniform" } ] }"#;
        assert!(ScenarioSpec::parse_str(top)
            .unwrap_err()
            .to_string()
            .contains("typo"));
        let phase = r#"{ "name": "t", "phases": [ { "kind": "uniform", "touchez": 5 } ] }"#;
        assert!(ScenarioSpec::parse_str(phase)
            .unwrap_err()
            .to_string()
            .contains("touchez"));
    }

    #[test]
    fn unknown_kind_is_rejected_with_catalog() {
        let err = ScenarioSpec::parse_str(r#"{ "name": "t", "phases": [ { "kind": "nope" } ] }"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown phase kind"), "{err}");
        assert!(err.contains("kv_lookup"), "error names the catalog: {err}");
    }

    #[test]
    fn percent_above_100_is_a_spec_error() {
        let err = ScenarioSpec::parse_str(
            r#"{ "name": "t", "phases": [ { "kind": "uniform", "write_percent": 101 } ] }"#,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("write_percent"), "{err}");
    }

    #[test]
    fn node_sets_select_processors() {
        let s = shape();
        assert_eq!(NodeSet::All.procs(&s).len(), 8);
        assert_eq!(NodeSet::Even.procs(&s), vec![0, 1, 4, 5]);
        assert_eq!(NodeSet::Odd.procs(&s), vec![2, 3, 6, 7]);
        assert_eq!(NodeSet::Half.procs(&s), vec![0, 1, 2, 3]);
        assert_eq!(NodeSet::List(vec![3]).procs(&s), vec![6, 7]);
    }

    #[test]
    fn out_of_range_node_list_fails_shape_check() {
        let spec = ScenarioSpec::parse_str(
            r#"{ "name": "t", "phases": [ { "kind": "uniform", "nodes": [9] } ] }"#,
        )
        .unwrap();
        assert!(spec.check_shape(&shape()).is_err());
    }

    #[test]
    fn phase_seeds_are_stable_and_distinct() {
        let spec = ScenarioSpec::parse_str(
            r#"{ "name": "t", "seed": 5, "phases": [
                { "kind": "uniform" }, { "kind": "uniform" }, { "kind": "uniform", "seed": 3 }
            ] }"#,
        )
        .unwrap();
        assert_ne!(spec.phase_seed(0), spec.phase_seed(1));
        assert_eq!(spec.phase_seed(2), 3);
        let again = ScenarioSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(again.phase_seed(0), spec.phase_seed(0));
    }
}
