//! The phase catalog: typed traffic patterns and their lowering.
//!
//! Each [`PhaseKind`] is one sharing pattern with a small typed parameter
//! set. A phase compiles — given the machine shape, the participant set,
//! a seed and an intensity — into one segment list per processor.
//! Non-participants receive only the phase's internal barriers (barriers
//! are machine-global: every processor must arrive).
//!
//! The catalog is registered in [`PHASE_KINDS`], the same idiom as the
//! `ccn_controller::ARCHITECTURES` registry: `repro scenario list`
//! renders it, and the spec parser names it in unknown-kind errors.

use std::collections::BTreeMap;

use ccn_harness::Json;
use ccn_sim::SplitMix64;
use ccn_workloads::{Access, AddressSpace, MachineShape, Segment};

use crate::spec::SpecError;
use crate::zipf::Zipf;

/// The phase catalog: `(kind name, one-line description)`, in spec order.
pub const PHASE_KINDS: &[(&str, &str)] = &[
    (
        "uniform",
        "random reads/writes over one shared region (tunable write %)",
    ),
    (
        "zipf",
        "skewed sharing: touches drawn Zipf(s)-hot over region slots",
    ),
    (
        "kv_lookup",
        "reader-heavy key-value lookups over a Zipf-hot key table",
    ),
    (
        "ring",
        "producer/consumer ring: write your slot, read your neighbor's",
    ),
    (
        "lock_convoy",
        "participants convoy on hot locks around shared critical lines",
    ),
    (
        "migratory",
        "lock-mediated objects migrating from processor to processor",
    ),
    (
        "false_sharing",
        "write storm on distinct words of the same cache lines",
    ),
    (
        "private",
        "node-local working-set sweeps: the zero-communication baseline",
    ),
];

/// The node-set selectors accepted by a phase's `"nodes"` field.
pub const NODE_SETS: &[(&str, &str)] = &[
    ("all", "every node (default)"),
    ("even", "even-numbered nodes"),
    ("odd", "odd-numbered nodes"),
    ("half", "the first half of the nodes"),
    ("[n, ...]", "an explicit list of node indices"),
];

/// Shared lowering state threaded through every phase of a scenario.
pub struct LowerCtx<'a> {
    /// Machine dimensions.
    pub shape: &'a MachineShape,
    /// The scenario's shared address space (phases allocate regions here).
    pub space: &'a mut AddressSpace,
    /// Fresh-barrier allocator (machine-global ids).
    pub next_barrier: &'a mut u32,
    /// Fresh-lock allocator.
    pub next_lock: &'a mut u32,
    /// Regions the scrub epilogue must rewrite: every region remote
    /// processors may touch. Node-local private regions stay out.
    pub scrub: &'a mut Vec<(u64, u64)>,
}

impl LowerCtx<'_> {
    fn fresh_barrier(&mut self) -> u32 {
        let id = *self.next_barrier;
        *self.next_barrier += 1;
        id
    }

    fn fresh_locks(&mut self, n: u32) -> u32 {
        let base = *self.next_lock;
        *self.next_lock += n;
        base
    }

    /// Allocates a shared (round-robin-placed) region and marks it for
    /// the scrub epilogue.
    fn shared_region(&mut self, bytes: u64) -> u64 {
        let base = self.space.alloc(bytes);
        self.scrub.push((base, bytes));
        base
    }
}

/// One typed traffic pattern with its parameters.
///
/// Every numeric parameter has a default chosen so a bare
/// `{ "kind": "..." }` phase is a sensible small experiment; all values
/// are validated at parse time (percentages ≤ 100, counts ≥ 1, sizes
/// bounded), so a spec that parses always lowers.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseKind {
    /// Uniform random sharing (the calibration workhorse).
    Uniform {
        /// Shared-region size in bytes.
        region_bytes: u64,
        /// Touches per participant.
        touches: u32,
        /// Percentage of touches that are writes (0–100).
        write_percent: u32,
        /// Touch alignment in bytes.
        stride: u32,
        /// Compute cycles between touches.
        work: u16,
    },
    /// Zipf-skewed sharing over one region's slots.
    Zipf {
        /// Shared-region size in bytes.
        region_bytes: u64,
        /// Touches per participant.
        touches: u32,
        /// Percentage of touches that are writes (0–100).
        write_percent: u32,
        /// Zipf exponent (0 = uniform, ~1 = web/KV skew).
        zipf_s: f64,
        /// Slot size in bytes.
        stride: u32,
        /// Compute cycles between touches.
        work: u16,
    },
    /// Reader-heavy key-value lookups over a Zipf-hot key table.
    KvLookup {
        /// Number of keys in the table.
        keys: u64,
        /// Bytes per key's value.
        key_bytes: u64,
        /// Lookups per participant.
        lookups: u32,
        /// Percentage of lookups that update the value (0–100).
        write_percent: u32,
        /// Zipf exponent of the key popularity.
        zipf_s: f64,
        /// Compute cycles per lookup.
        work: u16,
    },
    /// Producer/consumer ring: one slot per participant, rotate readers.
    Ring {
        /// Bytes per ring slot.
        slot_bytes: u64,
        /// Produce/consume laps.
        laps: u32,
        /// Compute cycles per element.
        work: u16,
    },
    /// Lock convoy around shared critical regions.
    LockConvoy {
        /// Distinct locks (1 = a single global convoy).
        locks: u32,
        /// Bytes protected by each lock.
        critical_bytes: u64,
        /// Acquisitions per participant.
        rounds: u32,
        /// Compute cycles per critical-section line.
        work: u16,
        /// Think-time cycles between acquisitions.
        think: u16,
    },
    /// Migratory objects: each object hops between participants under
    /// its lock, read-modify-written by every holder.
    Migratory {
        /// Number of migrating objects.
        objects: u32,
        /// Bytes per object.
        object_bytes: u64,
        /// Hops (each hop hands every object to the next participant).
        hops: u32,
        /// Compute cycles per object line.
        work: u16,
        /// Think-time cycles for non-holders per hop.
        think: u16,
    },
    /// False-sharing storm: distinct words of the same lines.
    FalseSharing {
        /// Number of contended cache lines.
        lines: u64,
        /// Writes per participant.
        touches: u32,
        /// Compute cycles between writes.
        work: u16,
    },
    /// Node-local private sweeps (zero communication).
    Private {
        /// Private working-set bytes per participant.
        bytes_per_proc: u64,
        /// Sweeps over the working set.
        sweeps: u32,
        /// Compute cycles per element.
        work: u16,
    },
}

/// Reads a bounded integer field.
fn get_u64(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: u64,
    min: u64,
    max: u64,
) -> Result<u64, SpecError> {
    let v = match map.get(key) {
        None => return Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| SpecError::new(format!("'{key}' must be a non-negative integer")))?,
    };
    if !(min..=max).contains(&v) {
        return Err(SpecError::new(format!(
            "'{key}' = {v} is outside {min}..={max}"
        )));
    }
    Ok(v)
}

/// Reads a bounded float field.
fn get_f64(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: f64,
    min: f64,
    max: f64,
) -> Result<f64, SpecError> {
    let v = match map.get(key) {
        None => return Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| SpecError::new(format!("'{key}' must be a number")))?,
    };
    if !(min..=max).contains(&v) {
        return Err(SpecError::new(format!(
            "'{key}' = {v} is outside {min}..={max}"
        )));
    }
    Ok(v)
}

const MAX_REGION: u64 = 1 << 30;
const MAX_COUNT: u64 = 100_000_000;

impl PhaseKind {
    /// The kind's registry name.
    pub fn name(&self) -> &'static str {
        match self {
            PhaseKind::Uniform { .. } => "uniform",
            PhaseKind::Zipf { .. } => "zipf",
            PhaseKind::KvLookup { .. } => "kv_lookup",
            PhaseKind::Ring { .. } => "ring",
            PhaseKind::LockConvoy { .. } => "lock_convoy",
            PhaseKind::Migratory { .. } => "migratory",
            PhaseKind::FalseSharing { .. } => "false_sharing",
            PhaseKind::Private { .. } => "private",
        }
    }

    /// The parameter keys this kind accepts (for unknown-key errors).
    pub fn known_keys(&self) -> Vec<&'static str> {
        let mut keys = vec!["kind", "nodes", "intensity", "seed"];
        keys.extend(match self {
            PhaseKind::Uniform { .. } => {
                vec!["region_bytes", "touches", "write_percent", "stride", "work"]
            }
            PhaseKind::Zipf { .. } => vec![
                "region_bytes",
                "touches",
                "write_percent",
                "zipf_s",
                "stride",
                "work",
            ],
            PhaseKind::KvLookup { .. } => vec![
                "keys",
                "key_bytes",
                "lookups",
                "write_percent",
                "zipf_s",
                "work",
            ],
            PhaseKind::Ring { .. } => vec!["slot_bytes", "laps", "work"],
            PhaseKind::LockConvoy { .. } => {
                vec!["locks", "critical_bytes", "rounds", "work", "think"]
            }
            PhaseKind::Migratory { .. } => {
                vec!["objects", "object_bytes", "hops", "work", "think"]
            }
            PhaseKind::FalseSharing { .. } => vec!["lines", "touches", "work"],
            PhaseKind::Private { .. } => vec!["bytes_per_proc", "sweeps", "work"],
        });
        keys
    }

    /// Whether `key` is a parameter (or common) key of this kind.
    pub fn knows_key(&self, key: &str) -> bool {
        self.known_keys().contains(&key)
    }

    /// Parses the kind-specific parameters out of a phase object.
    pub fn from_obj(kind: &str, map: &BTreeMap<String, Json>) -> Result<PhaseKind, SpecError> {
        let work = |d| get_u64(map, "work", d, 0, u16::MAX as u64).map(|v| v as u16);
        match kind {
            "uniform" => Ok(PhaseKind::Uniform {
                region_bytes: get_u64(map, "region_bytes", 64 * 1024, 64, MAX_REGION)?,
                touches: get_u64(map, "touches", 2_000, 1, MAX_COUNT)? as u32,
                write_percent: get_u64(map, "write_percent", 30, 0, 100)?.min(100) as u32,
                stride: get_u64(map, "stride", 8, 8, 4096)? as u32,
                work: work(4)?,
            }),
            "zipf" => Ok(PhaseKind::Zipf {
                region_bytes: get_u64(map, "region_bytes", 64 * 1024, 64, MAX_REGION)?,
                touches: get_u64(map, "touches", 2_000, 1, MAX_COUNT)? as u32,
                write_percent: get_u64(map, "write_percent", 20, 0, 100)? as u32,
                zipf_s: get_f64(map, "zipf_s", 1.0, 0.0, 8.0)?,
                stride: get_u64(map, "stride", 64, 8, 4096)? as u32,
                work: work(4)?,
            }),
            "kv_lookup" => Ok(PhaseKind::KvLookup {
                keys: get_u64(map, "keys", 256, 1, 1 << 24)?,
                key_bytes: get_u64(map, "key_bytes", 64, 8, 64 * 1024)?,
                lookups: get_u64(map, "lookups", 2_000, 1, MAX_COUNT)? as u32,
                write_percent: get_u64(map, "write_percent", 5, 0, 100)? as u32,
                zipf_s: get_f64(map, "zipf_s", 1.1, 0.0, 8.0)?,
                work: work(6)?,
            }),
            "ring" => Ok(PhaseKind::Ring {
                slot_bytes: get_u64(map, "slot_bytes", 1024, 8, MAX_REGION)?,
                laps: get_u64(map, "laps", 8, 1, 100_000)? as u32,
                work: work(4)?,
            }),
            "lock_convoy" => Ok(PhaseKind::LockConvoy {
                locks: get_u64(map, "locks", 1, 1, 1024)? as u32,
                critical_bytes: get_u64(map, "critical_bytes", 256, 8, 1 << 20)?,
                rounds: get_u64(map, "rounds", 64, 1, 1_000_000)? as u32,
                work: work(8)?,
                think: get_u64(map, "think", 32, 0, u16::MAX as u64)? as u16,
            }),
            "migratory" => Ok(PhaseKind::Migratory {
                objects: get_u64(map, "objects", 4, 1, 4096)? as u32,
                object_bytes: get_u64(map, "object_bytes", 256, 8, 1 << 20)?,
                hops: get_u64(map, "hops", 32, 1, 1_000_000)? as u32,
                work: work(8)?,
                think: get_u64(map, "think", 16, 0, u16::MAX as u64)? as u16,
            }),
            "false_sharing" => Ok(PhaseKind::FalseSharing {
                lines: get_u64(map, "lines", 4, 1, 1 << 20)?,
                touches: get_u64(map, "touches", 2_000, 1, MAX_COUNT)? as u32,
                work: work(2)?,
            }),
            "private" => Ok(PhaseKind::Private {
                bytes_per_proc: get_u64(map, "bytes_per_proc", 16 * 1024, 64, MAX_REGION)?,
                sweeps: get_u64(map, "sweeps", 4, 1, 100_000)? as u32,
                work: work(4)?,
            }),
            other => {
                let names: Vec<&str> = PHASE_KINDS.iter().map(|(n, _)| *n).collect();
                Err(SpecError::new(format!(
                    "unknown phase kind '{other}' (known: {})",
                    names.join(", ")
                )))
            }
        }
    }

    /// The kind-specific parameters in canonical order.
    pub fn params_to_json(&self) -> Vec<(&'static str, Json)> {
        match *self {
            PhaseKind::Uniform {
                region_bytes,
                touches,
                write_percent,
                stride,
                work,
            } => vec![
                ("region_bytes", Json::UInt(region_bytes)),
                ("touches", Json::UInt(touches as u64)),
                ("write_percent", Json::UInt(write_percent as u64)),
                ("stride", Json::UInt(stride as u64)),
                ("work", Json::UInt(work as u64)),
            ],
            PhaseKind::Zipf {
                region_bytes,
                touches,
                write_percent,
                zipf_s,
                stride,
                work,
            } => vec![
                ("region_bytes", Json::UInt(region_bytes)),
                ("touches", Json::UInt(touches as u64)),
                ("write_percent", Json::UInt(write_percent as u64)),
                ("zipf_s", Json::Num(zipf_s)),
                ("stride", Json::UInt(stride as u64)),
                ("work", Json::UInt(work as u64)),
            ],
            PhaseKind::KvLookup {
                keys,
                key_bytes,
                lookups,
                write_percent,
                zipf_s,
                work,
            } => vec![
                ("keys", Json::UInt(keys)),
                ("key_bytes", Json::UInt(key_bytes)),
                ("lookups", Json::UInt(lookups as u64)),
                ("write_percent", Json::UInt(write_percent as u64)),
                ("zipf_s", Json::Num(zipf_s)),
                ("work", Json::UInt(work as u64)),
            ],
            PhaseKind::Ring {
                slot_bytes,
                laps,
                work,
            } => vec![
                ("slot_bytes", Json::UInt(slot_bytes)),
                ("laps", Json::UInt(laps as u64)),
                ("work", Json::UInt(work as u64)),
            ],
            PhaseKind::LockConvoy {
                locks,
                critical_bytes,
                rounds,
                work,
                think,
            } => vec![
                ("locks", Json::UInt(locks as u64)),
                ("critical_bytes", Json::UInt(critical_bytes)),
                ("rounds", Json::UInt(rounds as u64)),
                ("work", Json::UInt(work as u64)),
                ("think", Json::UInt(think as u64)),
            ],
            PhaseKind::Migratory {
                objects,
                object_bytes,
                hops,
                work,
                think,
            } => vec![
                ("objects", Json::UInt(objects as u64)),
                ("object_bytes", Json::UInt(object_bytes)),
                ("hops", Json::UInt(hops as u64)),
                ("work", Json::UInt(work as u64)),
                ("think", Json::UInt(think as u64)),
            ],
            PhaseKind::FalseSharing {
                lines,
                touches,
                work,
            } => vec![
                ("lines", Json::UInt(lines)),
                ("touches", Json::UInt(touches as u64)),
                ("work", Json::UInt(work as u64)),
            ],
            PhaseKind::Private {
                bytes_per_proc,
                sweeps,
                work,
            } => vec![
                ("bytes_per_proc", Json::UInt(bytes_per_proc)),
                ("sweeps", Json::UInt(sweeps as u64)),
                ("work", Json::UInt(work as u64)),
            ],
        }
    }

    /// Lowers the phase into one segment list per processor.
    ///
    /// `participants` are the processors selected by the phase's node set
    /// (ascending); everyone else receives only the phase's internal
    /// barriers. `seed` drives every random stream; `intensity` scales
    /// the touch counts. Deterministic: same inputs, same segments.
    pub fn compile(
        &self,
        ctx: &mut LowerCtx,
        participants: &[usize],
        seed: u64,
        intensity: f64,
    ) -> Vec<Vec<Segment>> {
        let nprocs = ctx.shape.nprocs();
        let mut progs: Vec<Vec<Segment>> = vec![Vec::new(); nprocs];
        let scale = |count: u32| ((count as f64 * intensity) as u32).max(1);
        let proc_seed =
            |p: usize| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((p as u64) << 17) ^ 0x5EED;
        let k = participants.len();
        match *self {
            PhaseKind::Uniform {
                region_bytes,
                touches,
                write_percent,
                stride,
                work,
            } => {
                let region = ctx.shared_region(region_bytes);
                let touches = scale(touches);
                let writes = touches * write_percent.min(100) / 100;
                let reads = touches - writes;
                let chunks = 4u32;
                for &p in participants {
                    let s = proc_seed(p);
                    for c in 0..chunks {
                        progs[p].push(Segment::RandomWalk {
                            base: region,
                            bytes: region_bytes,
                            count: reads / chunks,
                            stride,
                            access: Access::Read,
                            work,
                            seed: s.wrapping_add(c as u64 * 2),
                        });
                        progs[p].push(Segment::RandomWalk {
                            base: region,
                            bytes: region_bytes,
                            count: writes / chunks,
                            stride,
                            access: Access::Write,
                            work,
                            seed: s.wrapping_add(c as u64 * 2 + 1),
                        });
                    }
                }
            }
            PhaseKind::Zipf {
                region_bytes,
                touches,
                write_percent,
                zipf_s,
                stride,
                work,
            } => {
                let region = ctx.shared_region(region_bytes);
                let slots = (region_bytes / stride as u64).max(1);
                let zipf = Zipf::new(slots, zipf_s);
                let touches = scale(touches);
                for &p in participants {
                    let mut rng = SplitMix64::new(proc_seed(p));
                    for _ in 0..touches {
                        let addr = region + zipf.sample(&mut rng) * stride as u64;
                        let access = if rng.chance(write_percent.min(100) as f64 / 100.0) {
                            Access::Write
                        } else {
                            Access::Read
                        };
                        progs[p].push(Segment::Touch { addr, access });
                        if work > 0 {
                            progs[p].push(Segment::Compute(work as u64));
                        }
                    }
                }
            }
            PhaseKind::KvLookup {
                keys,
                key_bytes,
                lookups,
                write_percent,
                zipf_s,
                work,
            } => {
                let table = ctx.shared_region(keys * key_bytes);
                let zipf = Zipf::new(keys, zipf_s);
                let stride = (ctx.shape.line_bytes.min(key_bytes) as u32).max(8);
                let lookups = scale(lookups);
                for &p in participants {
                    let mut rng = SplitMix64::new(proc_seed(p));
                    for _ in 0..lookups {
                        let key = zipf.sample(&mut rng);
                        let base = table + key * key_bytes;
                        let access = if rng.chance(write_percent.min(100) as f64 / 100.0) {
                            Access::ReadWrite
                        } else {
                            Access::Read
                        };
                        progs[p].push(Segment::Walk {
                            base,
                            bytes: key_bytes,
                            stride,
                            access,
                            work,
                        });
                    }
                }
            }
            PhaseKind::Ring {
                slot_bytes,
                laps,
                work,
            } => {
                let ring = ctx.shared_region(k as u64 * slot_bytes);
                let laps = scale(laps);
                for lap in 0..laps {
                    // Produce your slot.
                    for (i, &p) in participants.iter().enumerate() {
                        progs[p].push(Segment::Walk {
                            base: ring + i as u64 * slot_bytes,
                            bytes: slot_bytes,
                            stride: 8,
                            access: Access::Write,
                            work,
                        });
                    }
                    let produced = ctx.fresh_barrier();
                    for prog in progs.iter_mut() {
                        prog.push(Segment::Barrier(produced));
                    }
                    // Consume a rotating neighbor's slot.
                    for (i, &p) in participants.iter().enumerate() {
                        let from = (i + 1 + lap as usize) % k;
                        progs[p].push(Segment::Walk {
                            base: ring + from as u64 * slot_bytes,
                            bytes: slot_bytes,
                            stride: 8,
                            access: Access::Read,
                            work,
                        });
                    }
                    let consumed = ctx.fresh_barrier();
                    for prog in progs.iter_mut() {
                        prog.push(Segment::Barrier(consumed));
                    }
                }
            }
            PhaseKind::LockConvoy {
                locks,
                critical_bytes,
                rounds,
                work,
                think,
            } => {
                let region = ctx.shared_region(locks as u64 * critical_bytes);
                let lock_base = ctx.fresh_locks(locks);
                let rounds = scale(rounds);
                let stride = ctx.shape.line_bytes.min(critical_bytes) as u32;
                for &p in participants {
                    for r in 0..rounds {
                        let l = r % locks;
                        progs[p].push(Segment::Lock(lock_base + l));
                        progs[p].push(Segment::Walk {
                            base: region + l as u64 * critical_bytes,
                            bytes: critical_bytes,
                            stride,
                            access: Access::ReadWrite,
                            work,
                        });
                        progs[p].push(Segment::Unlock(lock_base + l));
                        if think > 0 {
                            progs[p].push(Segment::Compute(think as u64));
                        }
                    }
                }
            }
            PhaseKind::Migratory {
                objects,
                object_bytes,
                hops,
                work,
                think,
            } => {
                let region = ctx.shared_region(objects as u64 * object_bytes);
                let lock_base = ctx.fresh_locks(objects);
                let hops = scale(hops);
                let stride = ctx.shape.line_bytes.min(object_bytes) as u32;
                for hop in 0..hops {
                    for obj in 0..objects {
                        let holder = participants[(hop + obj) as usize % k];
                        let prog = &mut progs[holder];
                        prog.push(Segment::Lock(lock_base + obj));
                        prog.push(Segment::Walk {
                            base: region + obj as u64 * object_bytes,
                            bytes: object_bytes,
                            stride,
                            access: Access::ReadWrite,
                            work,
                        });
                        prog.push(Segment::Unlock(lock_base + obj));
                    }
                    if think > 0 {
                        for &p in participants {
                            progs[p].push(Segment::Compute(think as u64));
                        }
                    }
                }
            }
            PhaseKind::FalseSharing {
                lines,
                touches,
                work,
            } => {
                let line_bytes = ctx.shape.line_bytes;
                let region = ctx.shared_region(lines * line_bytes);
                let touches = scale(touches);
                for (i, &p) in participants.iter().enumerate() {
                    // Each participant owns one word offset; everyone
                    // shares the same lines.
                    let offset = (i as u64 * 8) % line_bytes;
                    for t in 0..touches {
                        let line = (t as u64 + i as u64) % lines;
                        progs[p].push(Segment::Touch {
                            addr: region + line * line_bytes + offset,
                            access: Access::Write,
                        });
                        if work > 0 {
                            progs[p].push(Segment::Compute(work as u64));
                        }
                    }
                }
            }
            PhaseKind::Private {
                bytes_per_proc,
                sweeps,
                work,
            } => {
                let sweeps = scale(sweeps);
                for &p in participants {
                    // Home-local, touched by one processor only: never
                    // creates directory state, so no scrub needed.
                    let region = ctx
                        .space
                        .alloc_at(bytes_per_proc, ctx.shape.node_of(p) as u16);
                    for _ in 0..sweeps {
                        progs[p].push(Segment::Walk {
                            base: region,
                            bytes: bytes_per_proc,
                            stride: 8,
                            access: Access::ReadWrite,
                            work,
                        });
                    }
                }
            }
        }
        progs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> MachineShape {
        MachineShape {
            nodes: 4,
            procs_per_node: 2,
            page_bytes: 4096,
            line_bytes: 128,
        }
    }

    fn lower(kind: &PhaseKind, participants: &[usize]) -> Vec<Vec<Segment>> {
        let shape = shape();
        let mut space = AddressSpace::new(shape.page_bytes);
        let mut nb = 10_000;
        let mut nl = 0;
        let mut scrub = Vec::new();
        let mut ctx = LowerCtx {
            shape: &shape,
            space: &mut space,
            next_barrier: &mut nb,
            next_lock: &mut nl,
            scrub: &mut scrub,
        };
        kind.compile(&mut ctx, participants, 7, 1.0)
    }

    #[test]
    fn every_kind_parses_from_empty_params_and_lowers() {
        let all: Vec<usize> = (0..8).collect();
        for (name, _) in PHASE_KINDS {
            let kind = PhaseKind::from_obj(name, &BTreeMap::new()).unwrap();
            assert_eq!(kind.name(), *name);
            let progs = lower(&kind, &all);
            assert_eq!(progs.len(), 8);
            assert!(
                progs.iter().any(|p| !p.is_empty()),
                "{name} lowered to nothing"
            );
        }
    }

    #[test]
    fn ring_barriers_cover_non_participants() {
        let kind = PhaseKind::from_obj("ring", &BTreeMap::new()).unwrap();
        let progs = lower(&kind, &[0, 1, 2, 3]);
        // Participants produce and consume; others still hit every barrier.
        let barrier_count = |p: &Vec<Segment>| {
            p.iter()
                .filter(|s| matches!(s, Segment::Barrier(_)))
                .count()
        };
        assert_eq!(barrier_count(&progs[0]), barrier_count(&progs[7]));
        assert!(progs[7].iter().all(|s| matches!(s, Segment::Barrier(_))));
    }

    #[test]
    fn locks_are_balanced_in_lock_phases() {
        for name in ["lock_convoy", "migratory"] {
            let kind = PhaseKind::from_obj(name, &BTreeMap::new()).unwrap();
            for prog in lower(&kind, &[0, 2, 5]) {
                let locks = prog
                    .iter()
                    .filter(|s| matches!(s, Segment::Lock(_)))
                    .count();
                let unlocks = prog
                    .iter()
                    .filter(|s| matches!(s, Segment::Unlock(_)))
                    .count();
                assert_eq!(locks, unlocks, "{name} unbalanced");
            }
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let all: Vec<usize> = (0..8).collect();
        for (name, _) in PHASE_KINDS {
            let kind = PhaseKind::from_obj(name, &BTreeMap::new()).unwrap();
            assert_eq!(lower(&kind, &all), lower(&kind, &all), "{name}");
        }
    }

    #[test]
    fn intensity_scales_touch_counts() {
        let kind = PhaseKind::from_obj("false_sharing", &BTreeMap::new()).unwrap();
        let shape = shape();
        let run = |intensity: f64| {
            let mut space = AddressSpace::new(shape.page_bytes);
            let mut nb = 0;
            let mut nl = 0;
            let mut scrub = Vec::new();
            let mut ctx = LowerCtx {
                shape: &shape,
                space: &mut space,
                next_barrier: &mut nb,
                next_lock: &mut nl,
                scrub: &mut scrub,
            };
            kind.compile(&mut ctx, &[0], 1, intensity)[0].len()
        };
        assert_eq!(run(2.0), 2 * run(1.0));
    }

    #[test]
    fn registry_and_parser_agree_on_the_catalog() {
        for (name, desc) in PHASE_KINDS {
            assert!(!desc.is_empty());
            assert!(
                PhaseKind::from_obj(name, &BTreeMap::new()).is_ok(),
                "{name}"
            );
        }
        assert!(PhaseKind::from_obj("bogus", &BTreeMap::new()).is_err());
    }
}
