//! Deterministic Zipf-distributed sampling.
//!
//! Datacenter access patterns are rank-skewed: a handful of keys absorb
//! most of the traffic. The [`Zipf`] sampler draws ranks `0..n` with
//! probability proportional to `1/(rank+1)^s`, driven by the simulator's
//! [`SplitMix64`] stream, so a scenario's hot-set skew is an explicit,
//! reproducible knob. `s = 0` degenerates to uniform; `s ≈ 1` matches
//! classic web/KV traces; larger `s` concentrates traffic further.

use ccn_sim::SplitMix64;

/// A cumulative-table Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not finite.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never true: construction requires
    /// at least one rank).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank in `0..n`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let total = *self.cumulative.last().expect("non-empty table");
        let x = rng.next_f64() * total;
        // First rank whose cumulative weight exceeds the draw.
        match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&x).expect("finite weights"))
        {
            Ok(i) | Err(i) => (i as u64).min(self.cumulative.len() as u64 - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_range_and_deterministic() {
        let z = Zipf::new(16, 1.2);
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert!(x < 16);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn rank_frequencies_are_monotone() {
        // Distribution sanity: with a healthy sample size, lower ranks
        // must be drawn at least as often as higher ranks (up to a small
        // statistical tolerance between adjacent ranks).
        let n = 8u64;
        let z = Zipf::new(n, 1.0);
        let mut rng = SplitMix64::new(99);
        let draws = 200_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let slack = draws / 100; // 1% of the sample
        for w in counts.windows(2) {
            assert!(
                w[0] + slack >= w[1],
                "rank frequencies not monotone: {counts:?}"
            );
        }
        assert!(
            counts[0] > 3 * counts[n as usize - 1],
            "hot rank is not hot: {counts:?}"
        );
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let n = 4u64;
        let z = Zipf::new(n, 0.0);
        let mut rng = SplitMix64::new(5);
        let draws = 100_000u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let expected = draws / n;
            assert!(
                c.abs_diff(expected) < expected / 10,
                "uniform draw skewed: {counts:?}"
            );
        }
    }
}
