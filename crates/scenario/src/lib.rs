//! `ccn-scenario` — declarative workload scenarios and trace replay.
//!
//! The paper evaluates its four controller architectures on eight SPLASH-2
//! scientific kernels. This crate opens the machine to *datacenter-style*
//! traffic through two frontends that both lower to the ordinary
//! [`ccn_workloads::Application`] machinery, so every new workload runs on
//! the unmodified timed simulator:
//!
//! * **The scenario DSL** ([`spec`], [`phase`], [`Scenario`]) — a small
//!   in-tree JSON format describing a barrier-separated graph of typed
//!   traffic phases (producer/consumer rings, lock convoys, reader-heavy
//!   key-value lookup, skewed Zipf sharing, migratory objects,
//!   false-sharing storms, …) with per-phase node sets, intensities, and
//!   seeds. A spec compiles deterministically into per-processor segment
//!   programs: same spec + seed ⇒ identical access streams, every run,
//!   every `--jobs` count.
//! * **Binary traces** ([`trace`]) — a versioned, length-prefixed binary
//!   format capturing any workload's exact per-processor operation stream
//!   ([`trace::record`]) and an application that replays a trace
//!   byte-for-byte ([`trace::TraceReplay`]), reproducing the original
//!   run's `SimReport` exactly.
//!
//! The [`sweep`] module routes scenarios through the `ccn-harness` worker
//! pool and the cross-architecture conformance digest envelope: a scenario
//! runs on all four architectures and the timing-independent functional
//! outcome must agree bit-for-bit (the scenario appends the same scrub
//! epilogue the `ccn-verify` conformance suite uses).
//!
//! The `repro scenario run|record|replay|list|check` CLI in `ccn-bench`
//! drives all of this; `docs/SCENARIOS.md` documents the spec format, the
//! phase catalog, and the trace layout.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod phase;
pub mod scenario;
pub mod spec;
pub mod sweep;
pub mod trace;
pub mod zipf;

pub use phase::{PhaseKind, NODE_SETS, PHASE_KINDS};
pub use scenario::Scenario;
pub use spec::{NodeSet, PhaseSpec, ScenarioSpec, SpecError};
pub use sweep::{
    run_scenario_case, run_scenario_conformance, scenario_config, shape_of, ScenarioRecord,
    SCENARIO_EVENT_LIMIT, SCENARIO_L2_BYTES,
};
pub use trace::{record, record_with_limit, Trace, TraceError, TraceReplay};
pub use zipf::Zipf;
