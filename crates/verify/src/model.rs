//! Abstract transition-system model of the directory protocol.
//!
//! The model drives the *real* [`ccn_protocol::directory::Directory`] state
//! machine — the same code the simulator executes — and surrounds it with
//! an untimed abstraction of everything else: one cache and one MSHR per
//! node per line, a message pool in place of the timed network, and a
//! per-line write counter in place of real data. Because the untimed parts
//! mirror the handler logic in `ccnuma`'s `ccexec` module step for step,
//! every interleaving the explorer enumerates corresponds to a schedule
//! the machine could execute under *some* timing, and a violation found
//! here is a protocol bug, not a modeling artifact.
//!
//! # Message ordering
//!
//! The machine's network delivers messages between a source/destination
//! pair in send order (FIFO ports, constant fall-through), and the
//! receiving controller dispatches network *responses* before network
//! *requests* (the paper's nearest-to-completion-first rule). Together
//! these give the protocol its architected ordering guarantee, which
//! [`Ordering::Causal`] reproduces: per destination and line, messages
//! are consumed in send order, except that a response may overtake
//! earlier-sent requests. [`Ordering::PairFifo`] keeps only per-pair
//! per-class FIFO and frees everything else — an adversarial network the
//! real machine does not have, useful for probing which races the
//! architected ordering is actually load-bearing for.

use ccn_mem::{LineAddr, NodeId};
use ccn_protocol::directory::{
    DirAction, DirOutcome, DirRequest, DirRequestKind, DirState, Directory, WritebackOutcome,
};
use ccn_protocol::{DirFormat, Msg, MsgClass, MsgKind, SharerBitmap};

/// Message-ordering discipline the model's network enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// The machine's architected guarantee: per destination and line,
    /// delivery follows send order, but a response may overtake
    /// earlier-sent requests (dispatch-priority jump).
    #[default]
    Causal,
    /// Adversarial: FIFO only within one (source, destination, class)
    /// triple; requests and responses reorder freely.
    PairFifo,
}

/// A protocol mutation: a deliberately seeded bug used to demonstrate that
/// the checker catches real defects (and what its counterexamples look
/// like). `None` is the faithful protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Faithful protocol.
    #[default]
    None,
    /// A sharer acknowledges an invalidation but keeps its copy readable.
    SharerIgnoresInv,
    /// A sharer invalidates its copy but never sends the ack.
    SharerDropsInvAck,
    /// The home omits the last invalidation of a fan-out while still
    /// counting it in the expected acks.
    HomeDropsInv,
    /// A forwarded owner hands out an exclusive copy but keeps its own
    /// modified copy.
    OwnerKeepsCopy,
}

impl Mutation {
    /// All mutations, with their CLI names.
    pub const ALL: [(&'static str, Mutation); 4] = [
        ("sharer-ignores-inv", Mutation::SharerIgnoresInv),
        ("sharer-drops-inv-ack", Mutation::SharerDropsInvAck),
        ("home-drops-inv", Mutation::HomeDropsInv),
        ("owner-keeps-copy", Mutation::OwnerKeepsCopy),
    ];

    /// Parses a CLI mutation name.
    pub fn parse(name: &str) -> Option<Mutation> {
        if name == "none" {
            return Some(Mutation::None);
        }
        Mutation::ALL
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| *m)
    }
}

/// Size and behavior bounds of the modeled system.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Number of nodes (2–64; exhaustive exploration wants 2–4).
    pub nodes: u16,
    /// Number of cache lines (homes assigned round-robin).
    pub lines: u8,
    /// Maximum writes issued per line. Writes are what grow the version
    /// space, so bounding them makes the reachable state space finite.
    pub max_writes: u32,
    /// Whether nodes may spontaneously evict cached copies (silent clean
    /// drops and dirty write-backs).
    pub evictions: bool,
    /// Message-ordering discipline.
    pub ordering: Ordering,
    /// Seeded protocol bug, if any.
    pub mutation: Mutation,
    /// Directory sharer representation the home nodes run. Coarse and
    /// limited-pointer formats over-invalidate (safety is preserved, some
    /// invalidations are useless); sparse directories add evict-invalidate
    /// recalls to the explored behavior.
    pub format: DirFormat,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            nodes: 2,
            lines: 1,
            max_writes: 2,
            evictions: true,
            ordering: Ordering::Causal,
            mutation: Mutation::None,
            format: DirFormat::FullMap,
        }
    }
}

impl ModelConfig {
    /// The home node of `line` (round-robin).
    pub fn home_of(&self, line: u8) -> NodeId {
        NodeId(line as u16 % self.nodes)
    }

    /// The line address used for `line` in the directory.
    pub fn addr(&self, line: u8) -> LineAddr {
        LineAddr(line as u64)
    }
}

/// A node's cached copy of one line. The payload is the write-version
/// number the copy was filled with (the model's stand-in for data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyState {
    /// No copy.
    Invalid,
    /// Read-only copy holding version `v`.
    Shared(u64),
    /// Writable (dirty) copy holding version `v`.
    Modified(u64),
}

/// One outstanding transaction of a node on a line (the machine's MSHR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mshr {
    kind: DirRequestKind,
    has_data: bool,
    payload: u64,
    needs_inv_done: bool,
    inv_done: bool,
}

impl Mshr {
    fn new(kind: DirRequestKind) -> Self {
        Mshr {
            kind,
            has_data: false,
            payload: 0,
            needs_inv_done: false,
            inv_done: false,
        }
    }
}

/// An in-flight message, stamped with a global send-sequence number that
/// the [`Ordering`] rules consult.
#[derive(Debug, Clone, Copy)]
struct Flight {
    seq: u64,
    msg: Msg,
}

/// One atomic step of the transition system.
///
/// `Issue` and `Evict` model processor activity; `Deliver` consumes one
/// in-flight message and runs the receiving controller's handler to
/// completion (including any directory-pending replays it unblocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// A processor on `node` issues a read or write to `line`.
    Issue {
        /// Issuing node.
        node: u16,
        /// Target line.
        line: u8,
        /// Write (true) or read (false).
        write: bool,
    },
    /// `node` evicts its copy of `line` (write-back if dirty).
    Evict {
        /// Evicting node.
        node: u16,
        /// Evicted line.
        line: u8,
    },
    /// Deliver the next eligible message to `to` for `line`.
    Deliver {
        /// Destination node.
        to: u16,
        /// Line the message concerns.
        line: u8,
        /// Source node (informational; determined by the ordering rule).
        from: u16,
        /// Whether the response-priority slot is taken (see [`Ordering`]).
        response: bool,
    },
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Label::Issue { node, line, write } => {
                let op = if write { "write" } else { "read" };
                write!(f, "node {node} issues a {op} to line {line}")
            }
            Label::Evict { node, line } => write!(f, "node {node} evicts line {line}"),
            Label::Deliver { to, line, from, .. } => {
                write!(f, "deliver to node {to} from node {from} (line {line})")
            }
        }
    }
}

/// A full state of the modeled system.
#[derive(Debug, Clone)]
pub struct ModelState {
    dirs: Vec<Directory>,
    caches: Vec<Vec<CopyState>>,
    mshrs: Vec<Vec<Option<Mshr>>>,
    flights: Vec<Flight>,
    memory: Vec<u64>,
    version: Vec<u64>,
    writes: Vec<u32>,
    next_seq: u64,
    /// Set when a handler hit a protocol-impossible situation (an assert
    /// the real machine would die on); the state is terminal.
    wedged: Option<String>,
}

impl ModelState {
    /// The initial state: everything invalid, memory at version 0.
    pub fn new(cfg: &ModelConfig) -> Self {
        assert!(cfg.nodes >= 2, "the protocol needs at least two nodes");
        assert!(cfg.lines >= 1, "at least one line");
        let n = cfg.nodes as usize;
        let l = cfg.lines as usize;
        ModelState {
            dirs: (0..cfg.nodes)
                .map(|i| {
                    Directory::with_format(NodeId(i), cfg.lines as usize, cfg.format, cfg.nodes)
                })
                .collect(),
            caches: vec![vec![CopyState::Invalid; l]; n],
            mshrs: vec![vec![None; l]; n],
            flights: Vec::new(),
            memory: vec![0; l],
            version: vec![0; l],
            writes: vec![0; l],
            next_seq: 0,
            wedged: None,
        }
    }

    /// The cached copy `node` holds of `line`.
    pub fn copy(&self, node: u16, line: u8) -> CopyState {
        self.caches[node as usize][line as usize]
    }

    /// The latest committed write version of `line`.
    pub fn version_of(&self, line: u8) -> u64 {
        self.version[line as usize]
    }

    /// Whether the system is fully quiescent: no in-flight messages, no
    /// outstanding transactions, no busy directory lines. (Directory
    /// pending queues cannot be non-empty here: handlers replay them
    /// whenever a line goes idle.)
    pub fn is_quiescent(&self, cfg: &ModelConfig) -> bool {
        self.flights.is_empty()
            && self.mshrs.iter().flatten().all(Option::is_none)
            && (0..cfg.lines).all(|l| !self.dirs[cfg.home_of(l).index()].is_busy(cfg.addr(l)))
    }

    /// Whether any message is in flight.
    pub fn has_flights(&self) -> bool {
        !self.flights.is_empty()
    }

    // -----------------------------------------------------------------
    // Enabled labels
    // -----------------------------------------------------------------

    /// All labels enabled in this state, in a deterministic order
    /// (issues, evictions, then deliveries by destination/line/source).
    pub fn enabled(&self, cfg: &ModelConfig) -> Vec<Label> {
        let mut out = Vec::new();
        if self.wedged.is_some() {
            return out; // terminal
        }
        for node in 0..cfg.nodes {
            for line in 0..cfg.lines {
                let li = line as usize;
                let no_mshr = self.mshrs[node as usize][li].is_none();
                let copy = self.caches[node as usize][li];
                if no_mshr && copy == CopyState::Invalid {
                    out.push(Label::Issue {
                        node,
                        line,
                        write: false,
                    });
                }
                if self.writes[li] < cfg.max_writes {
                    // A write is issuable on a miss (I), an upgrade (S),
                    // or as a hit (M); reads on a present copy are hits
                    // with no protocol action and are skipped.
                    let issuable = match copy {
                        CopyState::Invalid | CopyState::Shared(_) => no_mshr,
                        CopyState::Modified(_) => no_mshr,
                    };
                    if issuable {
                        out.push(Label::Issue {
                            node,
                            line,
                            write: true,
                        });
                    }
                }
            }
        }
        if cfg.evictions {
            for node in 0..cfg.nodes {
                for line in 0..cfg.lines {
                    let li = line as usize;
                    let copy = self.caches[node as usize][li];
                    if copy == CopyState::Invalid {
                        continue;
                    }
                    // Evicting under an outstanding upgrade is legal (the
                    // L2 may displace the line while the MSHR waits); other
                    // MSHR kinds imply no copy is present anyway.
                    let ok = match self.mshrs[node as usize][li] {
                        None => true,
                        Some(m) => m.kind == DirRequestKind::Upgrade,
                    };
                    if ok {
                        out.push(Label::Evict { node, line });
                    }
                }
            }
        }
        self.deliverable(cfg, &mut out);
        out
    }

    /// Appends the enabled `Deliver` labels per the ordering discipline.
    fn deliverable(&self, cfg: &ModelConfig, out: &mut Vec<Label>) {
        match cfg.ordering {
            Ordering::Causal => {
                // Per (to, line): the oldest message, plus the oldest
                // response when the oldest message is a request.
                let mut keys: Vec<(u16, u8)> = self
                    .flights
                    .iter()
                    .map(|f| (f.msg.to.0, f.msg.line.0 as u8))
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                for (to, line) in keys {
                    let group = || {
                        self.flights
                            .iter()
                            .filter(move |f| f.msg.to.0 == to && f.msg.line.0 as u8 == line)
                    };
                    let oldest = group().min_by_key(|f| f.seq).expect("non-empty group");
                    if oldest.msg.kind.class() == MsgClass::NetResponse {
                        out.push(Label::Deliver {
                            to,
                            line,
                            from: oldest.msg.from.0,
                            response: true,
                        });
                    } else {
                        out.push(Label::Deliver {
                            to,
                            line,
                            from: oldest.msg.from.0,
                            response: false,
                        });
                        if let Some(resp) = group()
                            .filter(|f| f.msg.kind.class() == MsgClass::NetResponse)
                            .min_by_key(|f| f.seq)
                        {
                            out.push(Label::Deliver {
                                to,
                                line,
                                from: resp.msg.from.0,
                                response: true,
                            });
                        }
                    }
                }
            }
            Ordering::PairFifo => {
                let mut keys: Vec<(u16, u8, u16, bool)> = self
                    .flights
                    .iter()
                    .map(|f| {
                        (
                            f.msg.to.0,
                            f.msg.line.0 as u8,
                            f.msg.from.0,
                            f.msg.kind.class() == MsgClass::NetResponse,
                        )
                    })
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                for (to, line, from, response) in keys {
                    out.push(Label::Deliver {
                        to,
                        line,
                        from,
                        response,
                    });
                }
            }
        }
    }

    /// Resolves a `Deliver` label to the index of the flight it consumes,
    /// per the ordering discipline. `None` if no such message is eligible.
    fn resolve(
        &self,
        cfg: &ModelConfig,
        to: u16,
        line: u8,
        from: u16,
        response: bool,
    ) -> Option<usize> {
        let in_group = |f: &Flight| f.msg.to.0 == to && f.msg.line.0 as u8 == line;
        match cfg.ordering {
            Ordering::Causal => {
                let oldest = self
                    .flights
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| in_group(f))
                    .min_by_key(|(_, f)| f.seq)?;
                if response {
                    let (i, f) = self
                        .flights
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| in_group(f) && f.msg.kind.class() == MsgClass::NetResponse)
                        .min_by_key(|(_, f)| f.seq)?;
                    (f.msg.from.0 == from).then_some(i)
                } else {
                    let (i, f) = oldest;
                    if f.msg.kind.class() == MsgClass::NetResponse {
                        return None; // the oldest is a response; use the response slot
                    }
                    (f.msg.from.0 == from).then_some(i)
                }
            }
            Ordering::PairFifo => {
                let class = if response {
                    MsgClass::NetResponse
                } else {
                    MsgClass::NetRequest
                };
                self.flights
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| {
                        in_group(f) && f.msg.from.0 == from && f.msg.kind.class() == class
                    })
                    .min_by_key(|(_, f)| f.seq)
                    .map(|(i, _)| i)
            }
        }
    }

    // -----------------------------------------------------------------
    // Transitions
    // -----------------------------------------------------------------

    /// Applies `label`. Returns a human-readable note describing what the
    /// step did, or `Err` when the label is not enabled here (used by the
    /// trace shrinker, which speculatively deletes events).
    pub fn apply(&mut self, cfg: &ModelConfig, label: Label) -> Result<String, String> {
        if self.wedged.is_some() {
            return Err("state is wedged".into());
        }
        match label {
            Label::Issue { node, line, write } => self.issue(cfg, node, line, write),
            Label::Evict { node, line } => self.evict(cfg, node, line),
            Label::Deliver {
                to,
                line,
                from,
                response,
            } => {
                let idx = self
                    .resolve(cfg, to, line, from, response)
                    .ok_or_else(|| format!("no eligible message for {label}"))?;
                let msg = self.flights.remove(idx).msg;
                Ok(self.deliver(cfg, msg))
            }
        }
    }

    fn issue(
        &mut self,
        cfg: &ModelConfig,
        node: u16,
        line: u8,
        write: bool,
    ) -> Result<String, String> {
        let li = line as usize;
        let ni = node as usize;
        if self.mshrs[ni][li].is_some() {
            return Err(format!("node {node} already has line {line} outstanding"));
        }
        let copy = self.caches[ni][li];
        if write {
            if self.writes[li] >= cfg.max_writes {
                return Err(format!("write budget for line {line} exhausted"));
            }
            self.writes[li] += 1;
            if let CopyState::Modified(_) = copy {
                self.version[li] += 1;
                self.caches[ni][li] = CopyState::Modified(self.version[li]);
                return Ok(format!(
                    "node {node} write hit on line {line}: now holds M(v{})",
                    self.version[li]
                ));
            }
        } else if copy != CopyState::Invalid {
            return Err(format!("node {node} read of line {line} would hit"));
        }
        let kind = match (write, copy) {
            (false, _) => DirRequestKind::Read,
            (true, CopyState::Invalid) => DirRequestKind::ReadExcl,
            (true, CopyState::Shared(_)) => DirRequestKind::Upgrade,
            (true, CopyState::Modified(_)) => unreachable!("write hits return above"),
        };
        self.mshrs[ni][li] = Some(Mshr::new(kind));
        let home = cfg.home_of(line);
        let mut note = format!("node {node} issues {kind:?} for line {line}");
        if home.0 == node {
            note.push_str(": presented to the home directory");
            let sub = self.home_request(cfg, line, kind, NodeId(node));
            note.push_str(&sub);
            let d = self.drain_pending(cfg, line);
            note.push_str(&d);
        } else {
            let mk = match kind {
                DirRequestKind::Read => MsgKind::ReadReq,
                DirRequestKind::ReadExcl => MsgKind::ReadExclReq,
                DirRequestKind::Upgrade => MsgKind::UpgradeReq,
            };
            self.send(cfg, mk, line, NodeId(node), home, NodeId(node), 0, 0);
            note.push_str(&format!(" -> {mk:?} to home node {}", home.0));
        }
        Ok(note)
    }

    fn evict(&mut self, cfg: &ModelConfig, node: u16, line: u8) -> Result<String, String> {
        let li = line as usize;
        let ni = node as usize;
        let copy = self.caches[ni][li];
        self.caches[ni][li] = CopyState::Invalid;
        let home = cfg.home_of(line);
        match copy {
            CopyState::Invalid => Err(format!("node {node} holds no copy of line {line}")),
            CopyState::Shared(_) => Ok(format!(
                "node {node} silently drops its clean copy of line {line}"
            )),
            CopyState::Modified(v) => {
                if home.0 == node {
                    self.memory[li] = v;
                    Ok(format!(
                        "node {node} (home) writes line {line} v{v} back to its local memory"
                    ))
                } else {
                    self.send(
                        cfg,
                        MsgKind::WritebackReq,
                        line,
                        NodeId(node),
                        home,
                        NodeId(node),
                        0,
                        v,
                    );
                    Ok(format!(
                        "node {node} evicts dirty line {line}: WritebackReq(v{v}) to home node {}",
                        home.0
                    ))
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send(
        &mut self,
        _cfg: &ModelConfig,
        kind: MsgKind,
        line: u8,
        from: NodeId,
        to: NodeId,
        requester: NodeId,
        acks_pending: u16,
        payload: u64,
    ) {
        let msg = Msg {
            kind,
            line: LineAddr(line as u64),
            from,
            to,
            requester,
            acks_pending,
            payload,
        };
        self.flights.push(Flight {
            seq: self.next_seq,
            msg,
        });
        self.next_seq += 1;
    }

    /// Presents a request to the home directory and performs the action it
    /// prescribes (mirrors `Machine::handle_home_request`).
    fn home_request(
        &mut self,
        cfg: &ModelConfig,
        line: u8,
        kind: DirRequestKind,
        requester: NodeId,
    ) -> String {
        let home = cfg.home_of(line);
        let la = cfg.addr(line);
        let outcome = self.dirs[home.index()].request(la, DirRequest { kind, requester });
        let outcome_note = match outcome {
            DirOutcome::Busy => "; line busy, request buffered at home".into(),
            DirOutcome::Act(DirAction::AwaitWriteback) => {
                "; home waits for the requester's in-flight write-back".into()
            }
            DirOutcome::Act(DirAction::Forward { owner }) => {
                let fwd = if kind == DirRequestKind::Read {
                    MsgKind::ReadFwd
                } else {
                    MsgKind::ReadExclFwd
                };
                self.send(cfg, fwd, line, home, owner, requester, 0, 0);
                format!("; forwarded as {fwd:?} to owner node {}", owner.0)
            }
            DirOutcome::Act(DirAction::Supply {
                exclusive,
                invalidate,
            }) => self.home_supply(cfg, line, kind, requester, exclusive, invalidate, false),
            DirOutcome::Act(DirAction::GrantUpgrade { invalidate }) => {
                self.home_supply(cfg, line, kind, requester, true, invalidate, true)
            }
        };
        let mut note = outcome_note;
        note.push_str(&self.drain_recalls(cfg, home.index()));
        note
    }

    /// Dispatches evict-invalidate recalls a sparse directory queued while
    /// handling a request (mirrors `Machine::drain_recalls`). A no-op for
    /// the dense formats, which never recall.
    fn drain_recalls(&mut self, cfg: &ModelConfig, dir: usize) -> String {
        let home = NodeId(dir as u16);
        let mut note = String::new();
        while let Some(rc) = self.dirs[dir].take_recall() {
            let line = rc.line.0 as u8;
            for target in rc.targets.iter() {
                self.send(cfg, MsgKind::InvReq, line, home, target, home, 0, 0);
                note.push_str(&format!(
                    "; slot recall: InvReq for line {line} to node {}",
                    target.0
                ));
            }
        }
        note
    }

    /// Supplies a line (or upgrade permission) from the home: local-copy
    /// side effects, invalidation fan-out, response or local completion
    /// (mirrors `Machine::home_supply`).
    #[allow(clippy::too_many_arguments)]
    fn home_supply(
        &mut self,
        cfg: &ModelConfig,
        line: u8,
        kind: DirRequestKind,
        requester: NodeId,
        exclusive: bool,
        invalidate: Option<SharerBitmap>,
        grant_only: bool,
    ) -> String {
        let home = cfg.home_of(line);
        let hi = home.index();
        let li = line as usize;
        let local_req = requester == home;
        let mut note = String::new();
        if exclusive {
            if !local_req {
                if let CopyState::Modified(v) = self.caches[hi][li] {
                    self.memory[li] = v;
                }
                if self.caches[hi][li] != CopyState::Invalid {
                    note.push_str("; home invalidates its own copy");
                    self.caches[hi][li] = CopyState::Invalid;
                }
            }
        } else if let CopyState::Modified(v) = self.caches[hi][li] {
            self.memory[li] = v;
            self.caches[hi][li] = CopyState::Shared(v);
            note.push_str("; home downgrades its dirty copy");
        }
        let payload = self.memory[li];
        let sharers: Vec<NodeId> = invalidate.map_or_else(Vec::new, |s| s.iter().collect());
        let acks = sharers.len() as u16;
        for (i, sharer) in sharers.iter().enumerate() {
            if cfg.mutation == Mutation::HomeDropsInv && i + 1 == sharers.len() {
                note.push_str(&format!(
                    "; home DROPS the invalidation to node {} [mutation]",
                    sharer.0
                ));
                continue;
            }
            self.send(cfg, MsgKind::InvReq, line, home, *sharer, requester, 0, 0);
            note.push_str(&format!("; InvReq to sharer node {}", sharer.0));
        }
        if local_req {
            if acks == 0 {
                note.push_str(&self.complete(cfg, home, line, payload));
            } else {
                note.push_str(&format!("; home waits for {acks} invalidation ack(s)"));
            }
        } else {
            let mk = if grant_only {
                MsgKind::UpgradeAck
            } else if exclusive {
                MsgKind::DataExclResp
            } else {
                MsgKind::DataResp
            };
            self.send(cfg, mk, line, home, requester, requester, acks, payload);
            note.push_str(&format!(
                "; {mk:?}(v{payload}) to node {} ({} ack(s) pending)",
                requester.0, acks
            ));
        }
        let _ = kind;
        note
    }

    /// Completes a node's outstanding transaction: fill or write commit
    /// (mirrors `Machine::complete_mshr` plus the store retire).
    fn complete(&mut self, _cfg: &ModelConfig, node: NodeId, line: u8, payload: u64) -> String {
        let li = line as usize;
        let m = self.mshrs[node.index()][li]
            .take()
            .expect("completion without an outstanding transaction");
        match m.kind {
            DirRequestKind::Read => {
                self.caches[node.index()][li] = CopyState::Shared(payload);
                format!("; node {} read completes with S(v{payload})", node.0)
            }
            DirRequestKind::ReadExcl | DirRequestKind::Upgrade => {
                self.version[li] += 1;
                self.caches[node.index()][li] = CopyState::Modified(self.version[li]);
                format!(
                    "; node {} write completes: commits v{}",
                    node.0, self.version[li]
                )
            }
        }
    }

    /// Replays directory-buffered requests while the line is idle
    /// (mirrors `Machine::drain_pending`).
    fn drain_pending(&mut self, cfg: &ModelConfig, line: u8) -> String {
        let home = cfg.home_of(line);
        let la = cfg.addr(line);
        let mut note = String::new();
        while let Some(req) = self.dirs[home.index()].pop_pending_if_idle(la) {
            note.push_str(&format!(
                "; home replays buffered {:?} from node {}",
                req.kind, req.requester.0
            ));
            let sub = self.home_request(cfg, line, req.kind, req.requester);
            note.push_str(&sub);
        }
        // The settle hook inside `pop_pending_if_idle` can queue a recall
        // even when nothing was buffered (an overcommitted sparse slot
        // claims its victim the moment the line goes idle).
        note.push_str(&self.drain_recalls(cfg, home.index()));
        note
    }

    /// Runs a risky directory entry point, converting its panics (states
    /// the real machine would assert out on) into a wedge. Mutated
    /// protocols can reach these; the faithful protocol must not.
    fn guard<T>(
        &mut self,
        what: &str,
        f: impl FnOnce(&mut Directory) -> T + std::panic::UnwindSafe,
        dir: usize,
    ) -> Result<T, String> {
        let d = &mut self.dirs[dir];
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(d)));
        res.map_err(|e| {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic".into());
            let why = format!("{what}: {msg}");
            self.wedged = Some(why.clone());
            why
        })
    }

    /// Consumes one delivered message and runs the receiving handler
    /// (mirrors `Machine::handle_net`).
    fn deliver(&mut self, cfg: &ModelConfig, msg: Msg) -> String {
        let line = msg.line.0 as u8;
        let li = line as usize;
        let to = msg.to;
        let ti = to.index();
        let home = cfg.home_of(line);
        let head = format!(
            "deliver {:?} node {} -> node {}",
            msg.kind, msg.from.0, to.0
        );
        let tail = match msg.kind {
            MsgKind::ReadReq | MsgKind::ReadExclReq | MsgKind::UpgradeReq => {
                let kind = match msg.kind {
                    MsgKind::ReadReq => DirRequestKind::Read,
                    MsgKind::ReadExclReq => DirRequestKind::ReadExcl,
                    _ => DirRequestKind::Upgrade,
                };
                let mut s = self.home_request(cfg, line, kind, msg.requester);
                s.push_str(&self.drain_pending(cfg, line));
                s
            }
            MsgKind::WritebackReq => {
                self.memory[li] = msg.payload;
                let out = self.guard("write-back", move |d| d.writeback(msg.line, msg.from), ti);
                let mut s = match out {
                    Err(why) => format!("; WEDGE: {why}"),
                    Ok(WritebackOutcome::Applied) => "; write-back applied".into(),
                    Ok(WritebackOutcome::RacedWithForward) => {
                        "; write-back raced with a forward; home waits for FwdMiss".into()
                    }
                    Ok(WritebackOutcome::ReleasesWaiter { request }) => {
                        let mut s = format!(
                            "; write-back releases the waiting {:?} from node {}",
                            request.kind, request.requester.0
                        );
                        s.push_str(&self.home_request(cfg, line, request.kind, request.requester));
                        s
                    }
                };
                if self.wedged.is_none() {
                    s.push_str(&self.drain_pending(cfg, line));
                }
                s
            }
            MsgKind::ReadFwd | MsgKind::ReadExclFwd => self.handle_forward(cfg, msg),
            MsgKind::InvReq => {
                let mut s = String::new();
                // A sparse-directory recall can invalidate a *dirty* copy;
                // the data rides the ack back to home memory, flagged in
                // `acks_pending` (mirrors `Machine::handle_inv_req`).
                let mut payload = 0;
                let mut dirty = 0;
                if cfg.mutation == Mutation::SharerIgnoresInv {
                    s.push_str("; node KEEPS its copy [mutation]");
                } else {
                    match self.caches[ti][li] {
                        CopyState::Invalid => {
                            s.push_str("; copy already gone (useless invalidation)");
                        }
                        CopyState::Shared(_) => {}
                        CopyState::Modified(v) => {
                            payload = v;
                            dirty = 1;
                            s.push_str("; recalled dirty copy rides the ack");
                        }
                    }
                    self.caches[ti][li] = CopyState::Invalid;
                }
                if cfg.mutation == Mutation::SharerDropsInvAck {
                    s.push_str("; node DROPS the InvAck [mutation]");
                } else {
                    self.send(
                        cfg,
                        MsgKind::InvAck,
                        line,
                        to,
                        home,
                        msg.requester,
                        dirty,
                        payload,
                    );
                    s.push_str("; InvAck to home");
                }
                s
            }
            MsgKind::InvAck => {
                if msg.acks_pending != 0 {
                    // A recalled dirty copy's data (see the InvReq arm).
                    self.memory[li] = msg.payload;
                }
                let out = self.guard("inv-ack", move |d| d.inv_ack(msg.line), ti);
                match out {
                    Err(why) => format!("; WEDGE: {why}"),
                    Ok(None) => {
                        // Recall acks resolve to `None`; the last one idles
                        // the line, so buffered requests must replay.
                        let mut s = String::from("; more acks outstanding");
                        s.push_str(&self.drain_pending(cfg, line));
                        s
                    }
                    Ok(Some(done)) => {
                        let mut s = String::from("; last invalidation ack");
                        if done.requester == home {
                            let payload = self.memory[li];
                            s.push_str(&self.complete(cfg, home, line, payload));
                        } else {
                            self.send(
                                cfg,
                                MsgKind::InvDone,
                                line,
                                home,
                                done.requester,
                                done.requester,
                                0,
                                0,
                            );
                            s.push_str(&format!("; InvDone to node {}", done.requester.0));
                        }
                        s.push_str(&self.drain_pending(cfg, line));
                        s
                    }
                }
            }
            MsgKind::DataResp => {
                if to == home {
                    // Home requested a dirty-remote line: the response
                    // doubles as the sharing write-back.
                    let out = self.guard(
                        "sharing write-back",
                        move |d| d.sharing_writeback(msg.line, msg.from),
                        ti,
                    );
                    match out {
                        Err(why) => format!("; WEDGE: {why}"),
                        Ok(()) => {
                            self.memory[li] = msg.payload;
                            let mut s = self.complete(cfg, home, line, msg.payload);
                            s.push_str(&self.drain_pending(cfg, line));
                            s
                        }
                    }
                } else if self.mshrs[ti][li].is_some() {
                    self.complete(cfg, to, line, msg.payload)
                } else {
                    let why = format!("DataResp at node {} without an outstanding read", to.0);
                    self.wedged = Some(why.clone());
                    format!("; WEDGE: {why}")
                }
            }
            MsgKind::DataExclResp | MsgKind::UpgradeAck => {
                if to == home && msg.kind == MsgKind::DataExclResp {
                    let out = self.guard(
                        "ownership ack",
                        move |d| d.ownership_ack(msg.line, msg.from),
                        ti,
                    );
                    match out {
                        Err(why) => format!("; WEDGE: {why}"),
                        Ok(()) => {
                            let mut s = self.complete(cfg, home, line, msg.payload);
                            s.push_str(&self.drain_pending(cfg, line));
                            s
                        }
                    }
                } else {
                    let payload = if msg.kind == MsgKind::UpgradeAck {
                        match self.caches[ti][li] {
                            CopyState::Shared(v) => v,
                            _ => 0, // copy displaced while the upgrade waited
                        }
                    } else {
                        msg.payload
                    };
                    match self.mshrs[ti][li].as_mut() {
                        None => {
                            let why =
                                format!("exclusive grant at node {} without a transaction", to.0);
                            self.wedged = Some(why.clone());
                            format!("; WEDGE: {why}")
                        }
                        Some(m) => {
                            m.has_data = true;
                            m.payload = payload;
                            if msg.acks_pending > 0 {
                                m.needs_inv_done = true;
                            }
                            if !m.needs_inv_done || m.inv_done {
                                self.complete(cfg, to, line, payload)
                            } else {
                                "; grant noted; awaiting InvDone".into()
                            }
                        }
                    }
                }
            }
            MsgKind::InvDone => match self.mshrs[ti][li].as_mut() {
                None => {
                    let why = format!("InvDone at node {} without a transaction", to.0);
                    self.wedged = Some(why.clone());
                    format!("; WEDGE: {why}")
                }
                Some(m) => {
                    m.inv_done = true;
                    if m.has_data {
                        let payload = m.payload;
                        self.complete(cfg, to, line, payload)
                    } else {
                        "; invalidations done; awaiting data".into()
                    }
                }
            },
            MsgKind::SharingWriteback => {
                let out = self.guard(
                    "sharing write-back",
                    move |d| d.sharing_writeback(msg.line, msg.from),
                    ti,
                );
                match out {
                    Err(why) => format!("; WEDGE: {why}"),
                    Ok(()) => {
                        self.memory[li] = msg.payload;
                        let mut s = format!("; memory takes v{}", msg.payload);
                        s.push_str(&self.drain_pending(cfg, line));
                        s
                    }
                }
            }
            MsgKind::OwnershipAck => {
                let out = self.guard(
                    "ownership ack",
                    move |d| d.ownership_ack(msg.line, msg.from),
                    ti,
                );
                match out {
                    Err(why) => format!("; WEDGE: {why}"),
                    Ok(()) => {
                        let mut s = String::from("; ownership transfer recorded");
                        s.push_str(&self.drain_pending(cfg, line));
                        s
                    }
                }
            }
            MsgKind::FwdMiss => {
                let out = self.guard("fwd-miss", move |d| d.fwd_miss(msg.line, msg.from), ti);
                match out {
                    Err(why) => format!("; WEDGE: {why}"),
                    Ok(request) => {
                        let payload = self.memory[li];
                        let exclusive = request.kind != DirRequestKind::Read;
                        let mut s = format!(
                            "; forward missed; home re-supplies {:?} from memory",
                            request.kind
                        );
                        if request.requester == home {
                            s.push_str(&self.complete(cfg, home, line, payload));
                        } else {
                            let mk = if exclusive {
                                MsgKind::DataExclResp
                            } else {
                                MsgKind::DataResp
                            };
                            self.send(
                                cfg,
                                mk,
                                line,
                                home,
                                request.requester,
                                request.requester,
                                0,
                                payload,
                            );
                            s.push_str(&format!(
                                "; {mk:?}(v{payload}) to node {}",
                                request.requester.0
                            ));
                        }
                        s.push_str(&self.drain_pending(cfg, line));
                        s
                    }
                }
            }
            MsgKind::ReplacementHint => {
                self.dirs[ti].remove_sharer_hint(msg.line, msg.from);
                "; advisory sharer removal".into()
            }
        };
        format!("{head}{tail}")
    }

    /// A forwarded request arrives at the (believed) dirty owner
    /// (mirrors `Machine::handle_forward`).
    fn handle_forward(&mut self, cfg: &ModelConfig, msg: Msg) -> String {
        let line = msg.line.0 as u8;
        let li = line as usize;
        let owner = msg.to;
        let oi = owner.index();
        let home = cfg.home_of(line);
        let exclusive = msg.kind == MsgKind::ReadExclFwd;
        match self.caches[oi][li] {
            CopyState::Invalid => {
                self.send(
                    cfg,
                    MsgKind::FwdMiss,
                    line,
                    owner,
                    home,
                    msg.requester,
                    0,
                    0,
                );
                "; owner no longer holds the line: FwdMiss to home".into()
            }
            CopyState::Shared(_) => {
                let why = format!(
                    "forwarded owner node {} holds line {line} Shared (ownership lost)",
                    owner.0
                );
                self.wedged = Some(why.clone());
                format!("; WEDGE: {why}")
            }
            CopyState::Modified(v) => {
                let mut s;
                if exclusive {
                    if cfg.mutation == Mutation::OwnerKeepsCopy {
                        s = String::from("; owner KEEPS its modified copy [mutation]");
                    } else {
                        self.caches[oi][li] = CopyState::Invalid;
                        s = String::from("; owner invalidates its copy");
                    }
                    self.send(
                        cfg,
                        MsgKind::DataExclResp,
                        line,
                        owner,
                        msg.requester,
                        msg.requester,
                        0,
                        v,
                    );
                    s.push_str(&format!("; DataExclResp(v{v}) to node {}", msg.requester.0));
                    if msg.requester != home {
                        self.send(
                            cfg,
                            MsgKind::OwnershipAck,
                            line,
                            owner,
                            home,
                            msg.requester,
                            0,
                            v,
                        );
                        s.push_str("; OwnershipAck to home");
                    }
                } else {
                    self.caches[oi][li] = CopyState::Shared(v);
                    s = String::from("; owner downgrades to Shared");
                    self.send(
                        cfg,
                        MsgKind::DataResp,
                        line,
                        owner,
                        msg.requester,
                        msg.requester,
                        0,
                        v,
                    );
                    s.push_str(&format!("; DataResp(v{v}) to node {}", msg.requester.0));
                    if msg.requester != home {
                        self.send(
                            cfg,
                            MsgKind::SharingWriteback,
                            line,
                            owner,
                            home,
                            msg.requester,
                            0,
                            v,
                        );
                        s.push_str("; SharingWriteback to home");
                    }
                }
                s
            }
        }
    }

    // -----------------------------------------------------------------
    // Invariants
    // -----------------------------------------------------------------

    /// Checks the every-state invariants. Returns `(kind, detail)` of the
    /// first violation.
    ///
    /// * `protocol-wedge` — a handler hit a state the machine asserts out
    ///   on (lost ownership, unexpected ack, ...).
    /// * `swmr` — two writable copies, or a writable copy concurrent with
    ///   a readable one (single-writer / multiple-reader broken).
    /// * `stale-data` — a cached copy holds a version other than the
    ///   latest committed write.
    pub fn check(&self, cfg: &ModelConfig) -> Option<(&'static str, String)> {
        if let Some(w) = &self.wedged {
            return Some(("protocol-wedge", w.clone()));
        }
        for line in 0..cfg.lines {
            let li = line as usize;
            let mut owner: Option<u16> = None;
            let mut readers: Vec<u16> = Vec::new();
            for node in 0..cfg.nodes {
                match self.caches[node as usize][li] {
                    CopyState::Invalid => {}
                    CopyState::Shared(_) => readers.push(node),
                    CopyState::Modified(_) => {
                        if let Some(prev) = owner {
                            return Some((
                                "swmr",
                                format!("nodes {prev} and {node} both hold line {line} Modified"),
                            ));
                        }
                        owner = Some(node);
                    }
                }
            }
            if let (Some(o), Some(r)) = (owner, readers.first()) {
                return Some((
                    "swmr",
                    format!(
                        "node {o} holds line {line} Modified while node {r} still \
                         holds a readable copy"
                    ),
                ));
            }
            for node in 0..cfg.nodes {
                let v = match self.caches[node as usize][li] {
                    CopyState::Invalid => continue,
                    CopyState::Shared(v) | CopyState::Modified(v) => v,
                };
                if v != self.version[li] {
                    return Some((
                        "stale-data",
                        format!(
                            "node {node} holds line {line} at v{v} but the latest \
                             committed write is v{}",
                            self.version[li]
                        ),
                    ));
                }
            }
        }
        None
    }

    /// Checks the quiescent-state invariants (call only when
    /// [`ModelState::is_quiescent`]): memory currency and directory/cache
    /// agreement.
    pub fn check_quiescent(&self, cfg: &ModelConfig) -> Option<(&'static str, String)> {
        for line in 0..cfg.lines {
            let li = line as usize;
            let home = cfg.home_of(line);
            let state = self.dirs[home.index()].state_of(cfg.addr(line));
            let mut remote_owner: Option<u16> = None;
            let mut any_owner = false;
            let mut remote_readers: Vec<u16> = Vec::new();
            for node in 0..cfg.nodes {
                match self.caches[node as usize][li] {
                    CopyState::Modified(_) => {
                        any_owner = true;
                        if node != home.0 {
                            remote_owner = Some(node);
                        }
                    }
                    CopyState::Shared(_) if node != home.0 => remote_readers.push(node),
                    _ => {}
                }
            }
            if !any_owner && self.memory[li] != self.version[li] {
                return Some((
                    "lost-write",
                    format!(
                        "quiescent with no dirty copy, but memory holds line {line} v{} \
                         while the latest committed write is v{}",
                        self.memory[li], self.version[li]
                    ),
                ));
            }
            match (remote_owner, state) {
                (Some(o), DirState::Dirty(d)) if d.0 == o => {}
                (Some(o), other) => {
                    return Some((
                        "directory-disagreement",
                        format!(
                            "node {o} holds line {line} Modified but the directory says \
                             {other:?}"
                        ),
                    ));
                }
                (None, DirState::Dirty(d)) => {
                    return Some((
                        "directory-disagreement",
                        format!(
                            "directory says node {} owns line {line} but it holds no \
                             dirty copy",
                            d.0
                        ),
                    ));
                }
                (None, DirState::Shared(bm)) => {
                    // Stale bits from silent evictions are legal; missing
                    // bits are not.
                    for r in &remote_readers {
                        if !bm.contains(NodeId(*r)) {
                            return Some((
                                "directory-disagreement",
                                format!(
                                    "node {r} holds line {line} Shared but is missing \
                                     from the directory's sharer set"
                                ),
                            ));
                        }
                    }
                }
                (None, DirState::Uncached) => {
                    if let Some(r) = remote_readers.first() {
                        return Some((
                            "directory-disagreement",
                            format!(
                                "node {r} holds line {line} Shared but the directory \
                                 says Uncached"
                            ),
                        ));
                    }
                }
            }
        }
        None
    }

    // -----------------------------------------------------------------
    // Canonical encoding and rendering
    // -----------------------------------------------------------------

    /// Canonical byte encoding of the state, used for visited-set
    /// deduplication. Two states encode equally iff they are
    /// behaviorally identical under the configured ordering (in-flight
    /// message sequence numbers are rank-normalized).
    pub fn encode(&self, cfg: &ModelConfig) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.push(u8::from(self.wedged.is_some()));
        for node in 0..cfg.nodes as usize {
            for line in 0..cfg.lines as usize {
                match self.caches[node][line] {
                    CopyState::Invalid => out.push(0),
                    CopyState::Shared(v) => {
                        out.push(1);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    CopyState::Modified(v) => {
                        out.push(2);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                match self.mshrs[node][line] {
                    None => out.push(0),
                    Some(m) => {
                        out.push(match m.kind {
                            DirRequestKind::Read => 1,
                            DirRequestKind::ReadExcl => 2,
                            DirRequestKind::Upgrade => 3,
                        });
                        out.push(u8::from(m.has_data));
                        out.extend_from_slice(&m.payload.to_le_bytes());
                        out.push(u8::from(m.needs_inv_done));
                        out.push(u8::from(m.inv_done));
                    }
                }
            }
        }
        for li in 0..cfg.lines as usize {
            out.extend_from_slice(&self.memory[li].to_le_bytes());
            out.extend_from_slice(&self.version[li].to_le_bytes());
            out.extend_from_slice(&self.writes[li].to_le_bytes());
        }
        for dir in &self.dirs {
            dir.encode_canonical(&mut out);
        }
        // In-flight messages: sort by the ordering-relevant key, stable in
        // send order, so irrelevant cross-group interleavings collapse.
        let mut idx: Vec<usize> = (0..self.flights.len()).collect();
        match cfg.ordering {
            Ordering::Causal => idx.sort_by_key(|&i| {
                let m = &self.flights[i].msg;
                (m.to.0, m.line.0, self.flights[i].seq)
            }),
            Ordering::PairFifo => idx.sort_by_key(|&i| {
                let m = &self.flights[i].msg;
                (
                    m.to.0,
                    m.line.0,
                    m.from.0,
                    m.kind.class() == MsgClass::NetResponse,
                    self.flights[i].seq,
                )
            }),
        }
        for i in idx {
            let m = &self.flights[i].msg;
            out.push(kind_code(m.kind));
            out.extend_from_slice(&m.line.0.to_le_bytes());
            out.extend_from_slice(&m.from.0.to_le_bytes());
            out.extend_from_slice(&m.to.0.to_le_bytes());
            out.extend_from_slice(&m.requester.0.to_le_bytes());
            out.extend_from_slice(&m.acks_pending.to_le_bytes());
            out.extend_from_slice(&m.payload.to_le_bytes());
        }
        out
    }

    /// Multi-line human-readable dump of the state (used at the end of a
    /// counterexample trace).
    pub fn render(&self, cfg: &ModelConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for line in 0..cfg.lines {
            let li = line as usize;
            let home = cfg.home_of(line);
            let _ = writeln!(
                out,
                "line {line} (home node {}): committed v{}, memory v{}, dir {:?}{}",
                home.0,
                self.version[li],
                self.memory[li],
                self.dirs[home.index()].state_of(cfg.addr(line)),
                if self.dirs[home.index()].is_busy(cfg.addr(line)) {
                    " (busy)"
                } else {
                    ""
                }
            );
            for node in 0..cfg.nodes {
                let c = self.caches[node as usize][li];
                let m = self.mshrs[node as usize][li];
                if c == CopyState::Invalid && m.is_none() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  node {node}: cache {c:?}{}",
                    match m {
                        None => String::new(),
                        Some(m) => format!(", outstanding {:?}", m.kind),
                    }
                );
            }
        }
        for f in &self.flights {
            let _ = writeln!(
                out,
                "in flight: {:?} node {} -> node {} (line {}, v{})",
                f.msg.kind, f.msg.from.0, f.msg.to.0, f.msg.line.0, f.msg.payload
            );
        }
        if let Some(w) = &self.wedged {
            let _ = writeln!(out, "WEDGED: {w}");
        }
        out
    }
}

fn kind_code(kind: MsgKind) -> u8 {
    use MsgKind::*;
    match kind {
        ReadReq => 0,
        ReadExclReq => 1,
        UpgradeReq => 2,
        WritebackReq => 3,
        ReadFwd => 4,
        ReadExclFwd => 5,
        InvReq => 6,
        DataResp => 7,
        DataExclResp => 8,
        UpgradeAck => 9,
        InvDone => 10,
        SharingWriteback => 11,
        OwnershipAck => 12,
        InvAck => 13,
        FwdMiss => 14,
        ReplacementHint => 15,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes() -> ModelConfig {
        ModelConfig::default()
    }

    fn deliver_all(cfg: &ModelConfig, st: &mut ModelState) {
        for _ in 0..1000 {
            let labels: Vec<Label> = st
                .enabled(cfg)
                .into_iter()
                .filter(|l| matches!(l, Label::Deliver { .. }))
                .collect();
            match labels.first() {
                None => return,
                Some(&l) => {
                    st.apply(cfg, l).expect("enabled label applies");
                }
            }
        }
        panic!("message drain did not terminate");
    }

    #[test]
    fn remote_read_fills_shared_and_registers_in_directory() {
        let cfg = two_nodes();
        let mut st = ModelState::new(&cfg);
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(1, 0), CopyState::Shared(0));
        assert_eq!(
            st.dirs[0].state_of(LineAddr(0)),
            DirState::Shared(ccn_protocol::SharerSet::Map(SharerBitmap::just(NodeId(1))))
        );
        assert!(st.is_quiescent(&cfg));
        assert!(st.check(&cfg).is_none());
        assert!(st.check_quiescent(&cfg).is_none());
    }

    #[test]
    fn write_invalidates_remote_sharer() {
        let cfg = two_nodes();
        let mut st = ModelState::new(&cfg);
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        st.apply(
            &cfg,
            Label::Issue {
                node: 0,
                line: 0,
                write: true,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(0, 0), CopyState::Modified(1));
        assert_eq!(st.copy(1, 0), CopyState::Invalid);
        assert_eq!(st.version_of(0), 1);
        assert!(st.check(&cfg).is_none());
        assert!(st.is_quiescent(&cfg));
    }

    #[test]
    fn dirty_remote_owner_serves_a_forwarded_read() {
        let cfg = two_nodes();
        let mut st = ModelState::new(&cfg);
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: true,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(1, 0), CopyState::Modified(1));
        st.apply(
            &cfg,
            Label::Issue {
                node: 0,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(0, 0), CopyState::Shared(1));
        assert_eq!(st.copy(1, 0), CopyState::Shared(1));
        assert!(st.check_quiescent(&cfg).is_none());
    }

    #[test]
    fn writeback_fwdmiss_race_resolves_from_memory() {
        let cfg = two_nodes();
        let mut st = ModelState::new(&cfg);
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: true,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        // Owner evicts; the write-back is in flight when home forwards.
        st.apply(&cfg, Label::Evict { node: 1, line: 0 }).unwrap();
        st.apply(
            &cfg,
            Label::Issue {
                node: 0,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(0, 0), CopyState::Shared(1));
        assert!(st.is_quiescent(&cfg));
        assert!(st.check_quiescent(&cfg).is_none());
    }

    #[test]
    fn encoding_is_stable_across_equivalent_interleavings() {
        let cfg = two_nodes();
        let mut a = ModelState::new(&cfg);
        let mut b = ModelState::new(&cfg);
        a.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        b.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        assert_eq!(a.encode(&cfg), b.encode(&cfg));
        deliver_all(&cfg, &mut a);
        assert_ne!(a.encode(&cfg), b.encode(&cfg));
    }

    #[test]
    fn mutated_sharer_produces_a_swmr_violation() {
        let cfg = ModelConfig {
            mutation: Mutation::SharerIgnoresInv,
            ..two_nodes()
        };
        let mut st = ModelState::new(&cfg);
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        st.apply(
            &cfg,
            Label::Issue {
                node: 0,
                line: 0,
                write: true,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        let (kind, _) = st.check(&cfg).expect("mutation must violate coherence");
        assert_eq!(kind, "swmr");
    }

    #[test]
    fn sparse_recall_keeps_the_model_coherent() {
        let cfg = ModelConfig {
            nodes: 2,
            lines: 3,
            format: DirFormat::Sparse { slots: 1 },
            ..ModelConfig::default()
        };
        let mut st = ModelState::new(&cfg);
        // Node 1 fills line 0; its home (node 0) has a single dir slot.
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(1, 0), CopyState::Shared(0));
        // Reading line 2 — same home, same slot — evicts line 0 from the
        // directory, recalling (invalidating) node 1's clean copy.
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 2,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(1, 2), CopyState::Shared(0));
        assert_eq!(st.copy(1, 0), CopyState::Invalid);
        assert!(st.dirs[0].recalled_lines() > 0, "the recall must have run");
        assert!(st.is_quiescent(&cfg));
        assert!(st.check(&cfg).is_none());
        assert!(st.check_quiescent(&cfg).is_none());
    }

    #[test]
    fn sparse_recall_of_a_dirty_line_saves_the_data() {
        let cfg = ModelConfig {
            nodes: 2,
            lines: 3,
            format: DirFormat::Sparse { slots: 1 },
            ..ModelConfig::default()
        };
        let mut st = ModelState::new(&cfg);
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: true,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(1, 0), CopyState::Modified(1));
        // The slot steal recalls the *dirty* line; the data must ride the
        // ack back into home memory (the lost-write invariant checks it).
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 2,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(1, 0), CopyState::Invalid);
        assert_eq!(st.version_of(0), 1);
        assert!(st.is_quiescent(&cfg));
        assert!(st.check(&cfg).is_none());
        assert!(st.check_quiescent(&cfg).is_none());
    }

    #[test]
    fn coarse_over_invalidation_stays_coherent() {
        let cfg = ModelConfig {
            nodes: 4,
            lines: 1,
            format: DirFormat::Coarse { region: 2 },
            ..ModelConfig::default()
        };
        let mut st = ModelState::new(&cfg);
        // Node 2 reads; the coarse map records its whole {2, 3} region.
        st.apply(
            &cfg,
            Label::Issue {
                node: 2,
                line: 0,
                write: false,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        // Node 1's write fans an InvReq to node 3 as well — useless but
        // harmless; coherence and directory agreement must survive.
        st.apply(
            &cfg,
            Label::Issue {
                node: 1,
                line: 0,
                write: true,
            },
        )
        .unwrap();
        deliver_all(&cfg, &mut st);
        assert_eq!(st.copy(2, 0), CopyState::Invalid);
        assert_eq!(st.copy(1, 0), CopyState::Modified(1));
        assert!(st.is_quiescent(&cfg));
        assert!(st.check(&cfg).is_none());
        assert!(st.check_quiescent(&cfg).is_none());
    }
}
