//! `ccn-verify` — protocol verification for the CC-NUMA reproduction.
//!
//! Two independent layers of assurance over the coherence machinery:
//!
//! 1. **Bounded exhaustive model checking** ([`model`], [`mod@explore`]):
//!    an explicit-state transition system that drives the *real*
//!    [`ccn_protocol::directory::Directory`] together with an untimed
//!    mirror of the controller handlers, enumerating every message
//!    interleaving on small configurations (2–4 nodes, 1–2 lines).
//!    Checked invariants: single-writer/multiple-reader, data currency
//!    (every readable copy holds the latest committed write), guaranteed
//!    drain to quiescence, and quiescent directory/cache/memory
//!    agreement. Violations come with a BFS-shortest, greedily shrunk
//!    ([`shrink`]) counterexample printed as a message sequence.
//!
//! 2. **Differential conformance** ([`differential`]): identical
//!    randomized workloads run through the full timed simulator on all
//!    four controller architectures (HWC, PPC, 2HWC, 2PPC) must produce
//!    bit-identical functional outcomes.
//!
//! The `repro verify` target in `ccn-bench` drives both; the root
//! `tests/verify_bounded.rs` and `tests/conformance.rs` suites pin them
//! into CI. See `docs/VERIFY.md` for the methodology, including the
//! message-ordering model ([`model::Ordering`]) and the seeded-mutation
//! validation of the checker itself ([`model::Mutation`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod differential;
pub mod explore;
pub mod model;
pub mod shrink;

pub use differential::{
    conformance_cases, run_case, run_case_with_format, run_conformance, ConfApp, ConfCase,
    ConfRecord, ARCHS,
};
pub use explore::{explore, Bounds, Report, Step, Violation};
pub use model::{CopyState, Label, ModelConfig, ModelState, Mutation, Ordering};
pub use shrink::{minimize, replay, shrink_trace};
