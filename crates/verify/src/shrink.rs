//! Counterexample shrinking.
//!
//! [`shrink_trace`] greedily deletes events from a violating trace and
//! replays the remainder, keeping any deletion that still reproduces the
//! same violation class, until no single deletion helps. Replay is
//! tolerant: an event made inapplicable by an earlier deletion is simply
//! skipped, which lets whole transactions fall out of the trace at once.
//!
//! [`minimize`] is the same greedy fixpoint over an arbitrary candidate
//! list — the torture suite uses it to cut a failing randomized schedule
//! down to a minimal set of knobs.

use crate::explore::{Step, Violation};
use crate::model::{Label, ModelConfig, ModelState};

/// Replays `labels` from the initial state, then drains remaining
/// messages, and returns the violation the trace produces (if any).
///
/// Inapplicable labels are skipped; the returned trace contains only the
/// events that actually applied. After the explicit events, deliveries
/// are applied in canonical order (up to `drain_cap`) so that traces
/// which leave the fatal message still in flight complete on their own.
pub fn replay(cfg: &ModelConfig, labels: &[Label], drain_cap: u32) -> Option<Violation> {
    let mut st = ModelState::new(cfg);
    let mut steps: Vec<Step> = Vec::new();
    for &label in labels {
        let Ok(note) = st.apply(cfg, label) else {
            continue;
        };
        steps.push(Step { label, note });
        if let Some((kind, detail)) = st.check(cfg) {
            return Some(Violation {
                kind: kind.to_string(),
                detail,
                trace: steps,
                end_state: st.render(cfg),
            });
        }
    }
    for _ in 0..drain_cap {
        let Some(label) = st
            .enabled(cfg)
            .into_iter()
            .find(|l| matches!(l, Label::Deliver { .. }))
        else {
            break;
        };
        let Ok(note) = st.apply(cfg, label) else {
            break;
        };
        steps.push(Step { label, note });
        if let Some((kind, detail)) = st.check(cfg) {
            return Some(Violation {
                kind: kind.to_string(),
                detail,
                trace: steps,
                end_state: st.render(cfg),
            });
        }
    }
    if !st.is_quiescent(cfg) {
        return Some(Violation {
            kind: "stuck".to_string(),
            detail: "outstanding work remains but no message delivery can complete it".to_string(),
            trace: steps,
            end_state: st.render(cfg),
        });
    }
    st.check_quiescent(cfg).map(|(kind, detail)| Violation {
        kind: kind.to_string(),
        detail,
        trace: steps,
        end_state: st.render(cfg),
    })
}

/// Shrinks a violating trace to a locally minimal one that still
/// reproduces a violation of the same `kind`. Returns `None` if the
/// original trace does not replay to that violation class (it then falls
/// to the caller to report the unshrunk trace).
pub fn shrink_trace(
    cfg: &ModelConfig,
    labels: &[Label],
    kind: &str,
    drain_cap: u32,
) -> Option<Violation> {
    let mut best_v = replay(cfg, labels, drain_cap)?;
    if best_v.kind != kind {
        return None;
    }
    let mut best: Vec<Label> = best_v.trace.iter().map(|s| s.label).collect();
    loop {
        let mut improved = false;
        for i in 0..best.len() {
            let mut cand = best.clone();
            cand.remove(i);
            if let Some(v) = replay(cfg, &cand, drain_cap) {
                // Replay appends the final drain as explicit events, so a
                // deletion can come back the same length; require strict
                // progress or the greedy loop would never converge.
                if v.kind == kind && v.trace.len() < best.len() {
                    best = v.trace.iter().map(|s| s.label).collect();
                    best_v = v;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return Some(best_v);
        }
    }
}

/// Greedy single-deletion minimization of an arbitrary candidate list:
/// repeatedly drops any one item whose removal keeps `still_fails` true,
/// until no single removal does. The result is 1-minimal with respect to
/// the predicate.
pub fn minimize<T: Clone>(mut items: Vec<T>, still_fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    loop {
        let mut improved = false;
        for i in 0..items.len() {
            let mut cand = items.clone();
            cand.remove(i);
            if still_fails(&cand) {
                items = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return items;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mutation;

    #[test]
    fn minimize_is_one_minimal() {
        // Predicate: fails while both 3 and 7 are present.
        let items = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let min = minimize(items, |xs| xs.contains(&3) && xs.contains(&7));
        assert_eq!(min, vec![3, 7]);
    }

    #[test]
    fn replay_skips_inapplicable_labels() {
        let cfg = ModelConfig::default();
        // A delivery with nothing in flight is inapplicable, not fatal.
        let labels = [Label::Deliver {
            to: 0,
            line: 0,
            from: 1,
            response: false,
        }];
        assert!(replay(&cfg, &labels, 100).is_none());
    }

    #[test]
    fn shrunk_mutation_trace_is_short() {
        let cfg = ModelConfig {
            mutation: Mutation::SharerIgnoresInv,
            ..ModelConfig::default()
        };
        // Build a deliberately padded trace: two full read transactions
        // by node 1, then the fatal write by node 0.
        let mut labels = Vec::new();
        labels.push(Label::Issue {
            node: 1,
            line: 0,
            write: false,
        });
        // Generous delivery padding; inapplicable ones are skipped.
        for _ in 0..8 {
            labels.push(Label::Deliver {
                to: 0,
                line: 0,
                from: 1,
                response: false,
            });
            labels.push(Label::Deliver {
                to: 1,
                line: 0,
                from: 0,
                response: true,
            });
        }
        labels.push(Label::Issue {
            node: 0,
            line: 0,
            write: true,
        });
        let v = shrink_trace(&cfg, &labels, "swmr", 1000).expect("must reproduce");
        assert!(v.trace.len() <= 6, "not shrunk:\n{v}");
    }
}
