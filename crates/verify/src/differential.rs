//! Cross-architecture differential conformance.
//!
//! The four controller architectures (HWC, PPC, 2HWC, 2PPC) differ only
//! in *when* protocol work happens, never in *what* it computes. This
//! module runs identical randomized workloads through all four and
//! asserts that the timing-independent functional outcome — per-line
//! write serials, home-memory contents, and residual directory state —
//! is bit-identical (see [`ccnuma::FunctionalSnapshot`]).
//!
//! For the final state to be architecture-independent the workload must
//! end in a *scrubbed* configuration: a deterministic epilogue makes
//! every processor flush its cache (walking a private, home-local
//! scratch region larger than the L2), then has processor 0 rewrite and
//! flush every shared line, all separated by barriers. After that, every
//! shared line is version-`N` in its home memory with an idle `Uncached`
//! directory entry, regardless of which interleaving the timing produced
//! along the way. The machine shrinks the L2 (32 KB) so the flushes are
//! cheap *and* capacity evictions/write-back races occur mid-run.
//!
//! Jobs run through the ordinary [`ccnuma::Runner`], so conformance
//! sweeps get the same worker pool, checkpointing and resume behavior as
//! the paper's experiment grids.

use ccn_harness::Json;
use ccn_sim::SplitMix64;
use ccn_workloads::{Access, AddressSpace, AppBuild, Application, MachineShape, Segment};
use ccnuma::{Architecture, FunctionalSnapshot, Machine, Runner, SweepRecord, SystemConfig};

/// The four controller architectures under comparison.
///
/// These are the config-level selectors; each resolves to its
/// `ccn_controller::arch::ControllerArch` entry via
/// [`Architecture::controller`]. A fifth architecture registered behind
/// that seam (see `docs/MODEL.md`) joins the sweep by being appended
/// here — appended, not inserted: the conformance digests render
/// snapshots in this order, so reordering would re-key every golden.
pub const ARCHS: [Architecture; 4] = [
    Architecture::Hwc,
    Architecture::Ppc,
    Architecture::TwoHwc,
    Architecture::TwoPpc,
];

/// L2 override used by conformance runs: small enough that the flush
/// epilogue is cheap and capacity misses exercise eviction races.
pub const CONF_L2_BYTES: u64 = 32 * 1024;

/// Event-count watchdog per run (converts a livelock into a failure).
const EVENT_LIMIT: u64 = 60_000_000;

/// Knobs of one conformance workload (same envelope as the protocol
/// torture suite, plus the deterministic scrub epilogue).
#[derive(Debug, Clone, Copy)]
pub struct ConfCase {
    /// Case index (also names the job).
    pub case: u64,
    /// Shared-region size in cache lines.
    pub region_lines: u64,
    /// Random touches per processor per run.
    pub touches: u32,
    /// Percentage of touches that are writes.
    pub write_percent: u32,
    /// Line-granular (true) or word-granular (false) touches.
    pub line_granular: bool,
    /// Serialize phases with locks.
    pub use_locks: bool,
    /// Number of barrier-separated phases.
    pub phases: u32,
    /// Seed for the per-processor address streams.
    pub seed: u64,
}

impl ConfCase {
    /// Draws case `case` from the deterministic envelope.
    pub fn draw(case: u64) -> Self {
        let mut rng = SplitMix64::new(0xD1FF ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        ConfCase {
            case,
            region_lines: 2 + rng.next_below(62),
            touches: 50 + rng.next_below(750) as u32,
            write_percent: rng.next_below(101) as u32,
            line_granular: rng.chance(0.5),
            use_locks: rng.chance(0.5),
            phases: 1 + rng.next_below(3) as u32,
            seed: rng.next_u64(),
        }
    }
}

/// The first `n` conformance cases.
pub fn conformance_cases(n: u64) -> Vec<ConfCase> {
    (0..n).map(ConfCase::draw).collect()
}

/// A [`ConfCase`] instantiated as a machine workload, including the
/// scrub epilogue.
#[derive(Debug, Clone)]
pub struct ConfApp {
    /// The case knobs.
    pub case: ConfCase,
    /// The L2 capacity the machine will use (the flush walks 2× this).
    pub l2_bytes: u64,
}

impl Application for ConfApp {
    fn name(&self) -> String {
        format!("conf{}", self.case.case)
    }

    fn build(&self, shape: &MachineShape) -> AppBuild {
        let c = &self.case;
        let mut space = AddressSpace::new(shape.page_bytes);
        let region_bytes = c.region_lines * shape.line_bytes;
        let region = space.alloc(region_bytes);
        let stride = if c.line_granular {
            shape.line_bytes as u32
        } else {
            8
        };
        let writes = c.touches * c.write_percent / 100;
        let reads = c.touches - writes;
        let nprocs = shape.nprocs();
        // Private scratch regions, home-local to each processor's node so
        // they never create directory state; walking 2× the L2 evicts
        // every prior occupant of every set.
        let flush_bytes = 2 * self.l2_bytes;
        let scratch: Vec<u64> = (0..nprocs)
            .map(|p| space.alloc_at(flush_bytes, shape.node_of(p) as u16))
            .collect();
        let scratch2 = space.alloc_at(flush_bytes, shape.node_of(0) as u16);
        let flush = |base: u64| Segment::Walk {
            base,
            bytes: flush_bytes,
            stride: shape.line_bytes as u32,
            access: Access::Read,
            work: 0,
        };
        let mut programs = Vec::with_capacity(nprocs);
        for (p, &my_scratch) in scratch.iter().enumerate() {
            let mut segs = vec![Segment::Barrier(0), Segment::StartMeasurement];
            // Body: the torture envelope.
            for phase in 0..c.phases {
                let seed = c
                    .seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((p as u64) << 16 | phase as u64);
                if c.use_locks {
                    segs.push(Segment::Lock(phase % 4));
                }
                segs.push(Segment::RandomWalk {
                    base: region,
                    bytes: region_bytes,
                    count: reads / c.phases.max(1),
                    stride,
                    access: Access::Read,
                    work: 2,
                    seed,
                });
                segs.push(Segment::RandomWalk {
                    base: region,
                    bytes: region_bytes,
                    count: writes / c.phases.max(1),
                    stride,
                    access: Access::Write,
                    work: 2,
                    seed: seed ^ 0xFFFF,
                });
                if c.use_locks {
                    segs.push(Segment::Unlock(phase % 4));
                }
                segs.push(Segment::Barrier(1 + phase));
            }
            // Scrub epilogue: everyone flushes, then processor 0 rewrites
            // every shared line and flushes again, leaving the shared
            // region at a deterministic version in home memory with idle
            // directory entries.
            segs.push(Segment::Barrier(100));
            segs.push(flush(my_scratch));
            segs.push(Segment::Barrier(101));
            if p == 0 {
                segs.push(Segment::Walk {
                    base: region,
                    bytes: region_bytes,
                    stride: shape.line_bytes as u32,
                    access: Access::Write,
                    work: 0,
                });
            }
            segs.push(Segment::Barrier(102));
            if p == 0 {
                segs.push(flush(scratch2));
            }
            segs.push(Segment::Barrier(103));
            programs.push(segs);
        }
        AppBuild {
            programs,
            placements: space.into_placements(),
        }
    }
}

/// The functional outcome of one (case, architecture) run, reduced to a
/// checkpointable record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfRecord {
    /// Case index.
    pub case: u64,
    /// Architecture label.
    pub architecture: String,
    /// [`FunctionalSnapshot::digest`] of the end state.
    pub digest: u64,
    /// Number of written lines in the snapshot.
    pub versions: u64,
    /// Number of home-memory entries in the snapshot.
    pub memory: u64,
    /// Number of residual (non-idle-Uncached) directory entries; the
    /// scrub epilogue should leave this at zero.
    pub directory: u64,
    /// Measured-phase cycles (architecture-dependent; recorded for
    /// context, excluded from conformance comparison).
    pub exec_cycles: u64,
}

impl SweepRecord for ConfRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("case", Json::UInt(self.case)),
            ("architecture", Json::Str(self.architecture.clone())),
            ("digest", Json::UInt(self.digest)),
            ("versions", Json::UInt(self.versions)),
            ("memory", Json::UInt(self.memory)),
            ("directory", Json::UInt(self.directory)),
            ("exec_cycles", Json::UInt(self.exec_cycles)),
        ])
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(ConfRecord {
            case: v.get("case")?.as_u64()?,
            architecture: v.get("architecture")?.as_str()?.to_string(),
            digest: v.get("digest")?.as_u64()?,
            versions: v.get("versions")?.as_u64()?,
            memory: v.get("memory")?.as_u64()?,
            directory: v.get("directory")?.as_u64()?,
            exec_cycles: v.get("exec_cycles")?.as_u64()?,
        })
    }
}

/// The machine configuration conformance runs use.
pub fn conf_config(arch: Architecture) -> SystemConfig {
    SystemConfig::small()
        .with_architecture(arch)
        .with_l2_bytes(CONF_L2_BYTES)
}

/// Runs one (case, architecture) pair and returns the record plus the
/// full snapshot (for diffing on mismatch).
pub fn run_case(case: ConfCase, arch: Architecture) -> (ConfRecord, FunctionalSnapshot) {
    run_case_with_format(case, arch, ccn_protocol::DirFormat::FullMap)
}

/// [`run_case`] under a chosen directory sharer representation. The
/// scrub epilogue drives every directory empty, so the functional
/// snapshot — and therefore the digest — must not depend on the format:
/// coarse and limited-pointer runs over-invalidate and sparse runs
/// recall, but what gets *written where* is identical.
pub fn run_case_with_format(
    case: ConfCase,
    arch: Architecture,
    format: ccn_protocol::DirFormat,
) -> (ConfRecord, FunctionalSnapshot) {
    let app = ConfApp {
        case,
        l2_bytes: CONF_L2_BYTES,
    };
    let mut machine = Machine::new(conf_config(arch).with_dir_format(format), &app)
        .expect("valid conformance config");
    let report = machine.run_with_event_limit(EVENT_LIMIT);
    machine.check_quiescent().unwrap_or_else(|e| {
        panic!(
            "conformance case {} on {}: invariant violated: {e}",
            case.case,
            arch.name()
        )
    });
    let snap = machine.functional_snapshot();
    let rec = ConfRecord {
        case: case.case,
        architecture: arch.name().to_string(),
        digest: snap.digest(),
        versions: snap.versions.len() as u64,
        memory: snap.memory.len() as u64,
        directory: snap.directory.len() as u64,
        exec_cycles: report.exec_cycles,
    };
    (rec, snap)
}

/// Runs `cases` across all four architectures on `runner` and checks
/// that, per case, every architecture produced an identical functional
/// snapshot. Returns the records on success; on a mismatch, re-runs the
/// two disagreeing configurations and returns the first field-level
/// snapshot difference.
pub fn run_conformance(runner: &Runner, cases: &[ConfCase]) -> Result<Vec<ConfRecord>, String> {
    let jobs: Vec<(String, (ConfCase, Architecture))> = cases
        .iter()
        .flat_map(|&c| {
            ARCHS
                .iter()
                .map(move |&a| (format!("conf/{}/{}", c.case, a.name()), (c, a)))
        })
        .collect();
    let records: Vec<ConfRecord> = runner.run_keyed(jobs, |&(case, arch)| run_case(case, arch).0);
    for chunk in records.chunks(ARCHS.len()) {
        let base = &chunk[0];
        for rec in &chunk[1..] {
            if rec.digest != base.digest {
                let case = cases
                    .iter()
                    .find(|c| c.case == base.case)
                    .expect("record for a requested case");
                let (_, a) = run_case(*case, ARCHS[0]);
                let bad_arch = ARCHS
                    .iter()
                    .copied()
                    .find(|ar| ar.name() == rec.architecture)
                    .expect("known architecture");
                let (_, b) = run_case(*case, bad_arch);
                let detail = a
                    .diff(&b)
                    .unwrap_or_else(|| "digest mismatch but snapshots diff clean".to_string());
                return Err(format!(
                    "case {}: {} and {} disagree on the functional outcome: {detail}",
                    base.case, base.architecture, rec.architecture
                ));
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma::sweep;

    #[test]
    fn conf_record_round_trips() {
        let rec = ConfRecord {
            case: 3,
            architecture: "2PPC".to_string(),
            digest: 0xDEAD_BEEF_0BAD_CAFE,
            versions: 17,
            memory: 19,
            directory: 0,
            exec_cycles: 123_456,
        };
        let back = <ConfRecord as SweepRecord>::from_json(&rec.to_json()).expect("round-trip");
        assert_eq!(back, rec);
    }

    #[test]
    fn scrub_epilogue_leaves_no_directory_state() {
        let (rec, snap) = run_case(ConfCase::draw(0), Architecture::Hwc);
        assert_eq!(
            rec.directory, 0,
            "scrub left directory state: {:?}",
            snap.directory
        );
        assert!(rec.versions > 0, "workload never wrote");
    }

    #[test]
    fn one_case_agrees_across_architectures() {
        let runner = sweep::Runner::sequential(ccnuma::experiments::Options::quick());
        let records = run_conformance(&runner, &conformance_cases(1)).expect("architectures agree");
        assert_eq!(records.len(), ARCHS.len());
    }
}
