//! Bounded exhaustive exploration of the protocol model.
//!
//! A breadth-first search over [`ModelState`]s, deduplicated through the
//! canonical state encoding, so the shortest counterexample is found
//! first. Every transition is checked against the every-state invariants
//! (single-writer/multiple-reader, data currency); every *new* state is
//! additionally probed with a deterministic message drain to verify that
//! the system can always reach quiescence and that, once quiescent, the
//! directory, the caches and memory agree.

use std::collections::VecDeque;

use ccn_sim::FxHashMap;

use crate::model::{Label, ModelConfig, ModelState};
use crate::shrink;

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    /// Maximum trace depth (number of events) explored. States at the
    /// bound are recorded but not expanded; if any such state exists the
    /// report is marked non-exhaustive.
    pub depth: u32,
    /// Hard cap on distinct states (memory guard).
    pub max_states: usize,
    /// Step cap for the per-state drain probe and for trace replay.
    pub drain_cap: u32,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            depth: 64,
            max_states: 4_000_000,
            drain_cap: 10_000,
        }
    }
}

/// One event of a counterexample trace: the label that was applied and
/// the human-readable note describing what it did.
#[derive(Debug, Clone)]
pub struct Step {
    /// The transition label.
    pub label: Label,
    /// What the step did, as narrated by the model.
    pub note: String,
}

/// A checked invariant failure, with the shortest (shrunk) trace that
/// reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Violation class: `swmr`, `stale-data`, `protocol-wedge`, `stuck`,
    /// `lost-write` or `directory-disagreement`.
    pub kind: String,
    /// One-line description of what is wrong.
    pub detail: String,
    /// The event sequence reproducing the violation from the initial
    /// state.
    pub trace: Vec<Step>,
    /// Rendered dump of the violating state.
    pub end_state: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "coherence violation [{}]: {}", self.kind, self.detail)?;
        writeln!(f, "counterexample ({} events):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:2}. {}", i + 1, step.note)?;
        }
        writeln!(f, "final state:")?;
        for line in self.end_state.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Result of one exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones leading to already-seen states).
    pub transitions: u64,
    /// Whether the reachable state space was covered completely (no state
    /// was left unexpanded because of the depth or state bound).
    pub exhaustive: bool,
    /// Deepest BFS layer reached.
    pub depth_reached: u32,
    /// The first violation found, if any (with a shrunk trace).
    pub violation: Option<Violation>,
}

impl Report {
    /// One-line summary for logs and the CLI.
    pub fn summary(&self) -> String {
        let cover = if self.exhaustive {
            "exhaustive"
        } else {
            "bounded"
        };
        match &self.violation {
            None => format!(
                "explored {} states / {} transitions ({cover}, depth {}): no violations",
                self.states, self.transitions, self.depth_reached
            ),
            Some(v) => format!(
                "explored {} states / {} transitions ({cover}, depth {}): VIOLATION [{}] \
                 with a {}-event counterexample",
                self.states,
                self.transitions,
                self.depth_reached,
                v.kind,
                v.trace.len()
            ),
        }
    }
}

/// Explores the reachable state space of `cfg` up to `bounds`, returning
/// the first violation found (with a shrunk counterexample) or a clean
/// coverage report.
pub fn explore(cfg: &ModelConfig, bounds: &Bounds) -> Report {
    let init = ModelState::new(cfg);
    let mut visited: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
    // meta[id] = (parent id, label+note that produced the state)
    let mut meta: Vec<(u32, Option<Label>)> = Vec::new();
    let mut frontier: VecDeque<(u32, u32, ModelState)> = VecDeque::new();
    visited.insert(init.encode(cfg), 0);
    meta.push((0, None));
    frontier.push_back((0, 0, init));

    let mut transitions: u64 = 0;
    let mut exhaustive = true;
    let mut depth_reached: u32 = 0;

    while let Some((id, depth, state)) = frontier.pop_front() {
        depth_reached = depth_reached.max(depth);
        if depth >= bounds.depth {
            exhaustive = false;
            continue;
        }
        for label in state.enabled(cfg) {
            let mut next = state.clone();
            let Ok(_note) = next.apply(cfg, label) else {
                continue;
            };
            transitions += 1;
            if let Some((kind, _)) = next.check(cfg) {
                let mut labels = path_labels(&meta, id);
                labels.push(label);
                return finish(
                    cfg,
                    bounds,
                    visited.len(),
                    transitions,
                    depth_reached,
                    kind,
                    labels,
                );
            }
            let key = next.encode(cfg);
            if visited.contains_key(&key) {
                continue;
            }
            if let Some((kind, drain_labels)) = drain_probe(cfg, &next, bounds.drain_cap) {
                let mut labels = path_labels(&meta, id);
                labels.push(label);
                labels.extend(drain_labels);
                return finish(
                    cfg,
                    bounds,
                    visited.len(),
                    transitions,
                    depth_reached,
                    kind,
                    labels,
                );
            }
            let nid = meta.len() as u32;
            visited.insert(key, nid);
            meta.push((id, Some(label)));
            if visited.len() >= bounds.max_states {
                exhaustive = false;
            } else {
                frontier.push_back((nid, depth + 1, next));
            }
        }
    }

    Report {
        states: visited.len(),
        transitions,
        exhaustive,
        depth_reached,
        violation: None,
    }
}

/// Reconstructs the label path from the initial state to `id`.
fn path_labels(meta: &[(u32, Option<Label>)], mut id: u32) -> Vec<Label> {
    let mut labels = Vec::new();
    while let (parent, Some(label)) = meta[id as usize] {
        labels.push(label);
        id = parent;
    }
    labels.reverse();
    labels
}

/// Checks that `state` can drain to quiescence through message deliveries
/// alone, and that the quiescent state is consistent. Returns the
/// violation kind and the delivery labels taken to reach it.
fn drain_probe(
    cfg: &ModelConfig,
    state: &ModelState,
    cap: u32,
) -> Option<(&'static str, Vec<Label>)> {
    let mut st = state.clone();
    let mut taken = Vec::new();
    for _ in 0..cap {
        let Some(label) = st
            .enabled(cfg)
            .into_iter()
            .find(|l| matches!(l, Label::Deliver { .. }))
        else {
            break;
        };
        taken.push(label);
        if st.apply(cfg, label).is_err() {
            break;
        }
        if let Some((kind, _)) = st.check(cfg) {
            return Some((kind, taken));
        }
    }
    if !st.is_quiescent(cfg) {
        return Some(("stuck", taken));
    }
    st.check_quiescent(cfg).map(|(kind, _)| (kind, taken))
}

/// Shrinks the counterexample and assembles the final report.
fn finish(
    cfg: &ModelConfig,
    bounds: &Bounds,
    states: usize,
    transitions: u64,
    depth_reached: u32,
    kind: &'static str,
    labels: Vec<Label>,
) -> Report {
    let violation = shrink::shrink_trace(cfg, &labels, kind, bounds.drain_cap)
        .or_else(|| shrink::replay(cfg, &labels, bounds.drain_cap))
        .expect("a violating trace must replay to a violation");
    Report {
        states,
        transitions,
        exhaustive: false,
        depth_reached,
        violation: Some(violation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mutation;

    #[test]
    fn two_nodes_one_line_is_clean_and_exhaustive() {
        let cfg = ModelConfig::default();
        let report = explore(&cfg, &Bounds::default());
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.exhaustive, "state space should be fully covered");
        assert!(
            report.states > 100,
            "suspiciously small space: {}",
            report.states
        );
    }

    #[test]
    fn dropped_inv_ack_is_caught_as_stuck() {
        let cfg = ModelConfig {
            mutation: Mutation::SharerDropsInvAck,
            ..ModelConfig::default()
        };
        let report = explore(&cfg, &Bounds::default());
        let v = report.violation.expect("mutation must be caught");
        assert_eq!(v.kind, "stuck");
        assert!(
            v.trace.len() <= 15,
            "counterexample not minimal: {} events\n{v}",
            v.trace.len()
        );
    }

    #[test]
    fn ignored_invalidation_breaks_swmr() {
        let cfg = ModelConfig {
            mutation: Mutation::SharerIgnoresInv,
            ..ModelConfig::default()
        };
        let report = explore(&cfg, &Bounds::default());
        let v = report.violation.expect("mutation must be caught");
        assert!(
            v.kind == "swmr" || v.kind == "stale-data",
            "kind: {}",
            v.kind
        );
        assert!(v.trace.len() <= 15, "trace too long:\n{v}");
    }
}
