//! Interconnection network model.
//!
//! The paper's base system connects 16 SMP nodes with a 32-byte-wide
//! state-of-the-art switch with a 70 ns (14-cycle) point-to-point latency;
//! the slow-network experiment (Figure 8) raises the latency to 1 µs.
//! Following the paper's methodology, contention is modeled at the
//! *external points* of the network — each node's egress (injection) and
//! ingress (delivery) ports — plus wire/fall-through latency; the switch
//! core is assumed non-blocking.
//!
//! Messages from the same source to the same destination are delivered in
//! order (each port is a FIFO reservation server and the fall-through
//! latency is constant); the directory protocol relies on this for the
//! write-back / forward-miss race.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ccn_mem::NodeId;
use ccn_sim::{Component, ComponentStats, Cycle, Histogram, Server};

/// Network timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Point-to-point fall-through latency in CPU cycles (paper: 14 = 70 ns
    /// base, 200 = 1 µs for the slow-network study).
    pub latency_cycles: Cycle,
    /// Port bandwidth in bytes per CPU cycle (paper: 32 bytes per 100 MHz
    /// switch cycle = 16 bytes per CPU cycle).
    pub bytes_per_cycle: u64,
    /// Fixed network-interface processing overhead per message per side.
    pub ni_overhead: Cycle,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency_cycles: 14,
            bytes_per_cycle: 16,
            ni_overhead: 5,
        }
    }
}

impl NetConfig {
    /// The Figure 8 slow network: 1 µs point-to-point latency.
    pub fn slow() -> Self {
        NetConfig {
            latency_cycles: 200,
            ..NetConfig::default()
        }
    }

    /// The minimum send-to-arrival delay of any message: NI overhead and
    /// at least one serialization cycle on each side, plus the
    /// fall-through latency. This is the network's contribution to the
    /// conservative parallel engine's lookahead — no cross-node message
    /// can take effect sooner than this after its send.
    pub fn min_delay(&self) -> Cycle {
        2 * self.ni_overhead + self.latency_cycles + 2
    }
}

/// The machine's interconnection network.
///
/// # Example
///
/// ```
/// use ccn_mem::NodeId;
/// use ccn_net::{NetConfig, Network};
///
/// let mut net = Network::new(4, NetConfig::default());
/// let arrival = net.send(100, NodeId(0), NodeId(2), 16);
/// // 1-cycle serialization at each port + 5-cycle NI overhead each side
/// // + 14-cycle fall-through.
/// assert_eq!(arrival, 100 + 5 + 1 + 14 + 1 + 5);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    config: NetConfig,
    egress: Vec<Server>,
    ingress: Vec<Server>,
    messages: u64,
    bytes: u64,
    transit: Histogram,
}

impl Network {
    /// Creates a network connecting `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the configured bandwidth is zero.
    pub fn new(nodes: usize, config: NetConfig) -> Self {
        assert!(nodes > 0, "a network needs at least one node");
        assert!(config.bytes_per_cycle > 0, "bandwidth must be positive");
        Network {
            config,
            egress: vec![Server::new("net egress"); nodes],
            ingress: vec![Server::new("net ingress"); nodes],
            messages: 0,
            bytes: 0,
            transit: Histogram::new(),
        }
    }

    /// The network timing parameters.
    pub fn config(&self) -> NetConfig {
        self.config
    }

    fn serialization(&self, bytes: u64) -> Cycle {
        bytes.div_ceil(self.config.bytes_per_cycle).max(1)
    }

    /// Sends a `bytes`-byte message, earliest injection at `time`; returns
    /// the cycle at which the message is fully delivered to the destination
    /// node's network interface.
    ///
    /// Sends to self are legal (they still pay port and NI costs); the
    /// machine model never generates them, but the torture tests may.
    pub fn send(&mut self, time: Cycle, from: NodeId, to: NodeId, bytes: u64) -> Cycle {
        let head_arrives = self.inject(time, from, bytes);
        self.deliver(time, head_arrives, to, bytes)
    }

    /// Source-side half of [`Network::send`]: counts the message,
    /// serializes it through the sender's egress port, and returns the
    /// cycle at which its head reaches the destination's ingress port.
    ///
    /// The parallel engine calls this on the sending node's shard (which
    /// exclusively owns that egress port) and defers [`Network::deliver`]
    /// to the window barrier, where deliveries are replayed in the
    /// canonical sequential send order.
    pub fn inject(&mut self, time: Cycle, from: NodeId, bytes: u64) -> Cycle {
        self.messages += 1;
        self.bytes += bytes;
        let ser = self.serialization(bytes);
        let injected = self.egress[from.index()].acquire_until(time + self.config.ni_overhead, ser);
        injected + self.config.latency_cycles
    }

    /// Destination-side half of [`Network::send`]: serializes the message
    /// through the destination's ingress port from `head_arrives` on and
    /// returns the full-delivery cycle. `send_time` is the original send
    /// cycle, used for the end-to-end transit histogram.
    pub fn deliver(
        &mut self,
        send_time: Cycle,
        head_arrives: Cycle,
        to: NodeId,
        bytes: u64,
    ) -> Cycle {
        let ser = self.serialization(bytes);
        let delivered = self.ingress[to.index()].acquire_until(head_arrives, ser);
        let arrival = delivered + self.config.ni_overhead;
        self.transit.record(arrival - send_time);
        arrival
    }

    /// Copies the egress-port state for nodes in `range` from `other`.
    ///
    /// During parallel execution each shard owns the egress ports of its
    /// own nodes while a coordinator-side hub owns every ingress port;
    /// this reassembles a full network view (for sampling snapshots and
    /// the end-of-run report) from the partitioned pieces.
    pub fn adopt_egress(&mut self, other: &Network, range: std::ops::Range<usize>) {
        for n in range {
            self.egress[n] = other.egress[n].clone();
        }
    }

    /// Adds shard-side message/byte counts into this network's counters
    /// (the counting half of the same reassembly).
    pub fn add_traffic(&mut self, messages: u64, bytes: u64) {
        self.messages += messages;
        self.bytes += bytes;
    }

    /// End-to-end message transit times (send to NI delivery), in cycles,
    /// as a log2-bucketed distribution.
    pub fn transit_histogram(&self) -> &Histogram {
        &self.transit
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload+header bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Utilization of a node's egress port over `elapsed` cycles.
    pub fn egress_utilization(&self, node: NodeId, elapsed: Cycle) -> f64 {
        self.egress[node.index()].utilization(elapsed)
    }

    /// Resets statistics, keeping port reservations.
    pub fn reset_stats(&mut self) {
        for p in self.egress.iter_mut().chain(self.ingress.iter_mut()) {
            p.reset_stats();
        }
        self.messages = 0;
        self.bytes = 0;
        self.transit = Histogram::new();
    }
}

impl Component for Network {
    fn component_name(&self) -> &'static str {
        "net"
    }

    fn stats_snapshot(&self) -> ComponentStats {
        let mut snap = ComponentStats::named("net")
            .counter("messages", self.messages)
            .counter("bytes", self.bytes)
            .gauge("p99_transit", self.transit.quantile(0.99).unwrap_or(0.0));
        for port in self.egress.iter().chain(self.ingress.iter()) {
            snap.children.push(port.stats_snapshot());
        }
        snap
    }

    fn reset_stats(&mut self) {
        Network::reset_stats(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(cfg: NetConfig) -> Network {
        Network::new(4, cfg)
    }

    #[test]
    fn no_contention_latency() {
        let mut net = n(NetConfig::default());
        // 144-byte data message: ser = ceil(144/16) = 9 per port.
        let t = net.send(0, NodeId(0), NodeId(1), 144);
        assert_eq!(t, 5 + 9 + 14 + 9 + 5);
        assert_eq!(net.messages(), 1);
        assert_eq!(net.bytes(), 144);
    }

    #[test]
    fn egress_contention_serializes() {
        let mut net = n(NetConfig::default());
        let a = net.send(0, NodeId(0), NodeId(1), 16);
        let b = net.send(0, NodeId(0), NodeId(2), 16);
        assert_eq!(b - a, 1); // second message waits one serialization slot
    }

    #[test]
    fn ingress_contention_serializes() {
        let mut net = n(NetConfig::default());
        let a = net.send(0, NodeId(0), NodeId(3), 160);
        let b = net.send(0, NodeId(1), NodeId(3), 160);
        assert!(b > a, "same-destination messages must queue at ingress");
    }

    #[test]
    fn same_pair_fifo_order() {
        let mut net = n(NetConfig::default());
        let mut last = 0;
        for i in 0..10 {
            let t = net.send(i, NodeId(2), NodeId(0), 144);
            assert!(t > last, "delivery order must follow send order");
            last = t;
        }
    }

    #[test]
    fn slow_network_latency() {
        let mut net = n(NetConfig::slow());
        let t = net.send(0, NodeId(0), NodeId(1), 16);
        assert_eq!(t, 5 + 1 + 200 + 1 + 5);
    }

    #[test]
    fn stats_reset() {
        let mut net = n(NetConfig::default());
        net.send(0, NodeId(0), NodeId(1), 16);
        assert!(net.egress_utilization(NodeId(0), 10) > 0.0);
        assert_eq!(net.transit_histogram().count(), 1);
        net.reset_stats();
        assert_eq!(net.messages(), 0);
        assert_eq!(net.egress_utilization(NodeId(0), 10), 0.0);
        assert_eq!(net.transit_histogram().count(), 0);
    }

    #[test]
    fn inject_deliver_composes_to_send() {
        let mut whole = n(NetConfig::default());
        let mut split = n(NetConfig::default());
        let mut last_whole = 0;
        let mut last_split = 0;
        for i in 0..8 {
            last_whole = whole.send(i * 3, NodeId(0), NodeId(1), 144);
            let head = split.inject(i * 3, NodeId(0), 144);
            last_split = split.deliver(i * 3, head, NodeId(1), 144);
        }
        assert_eq!(last_split, last_whole);
        assert_eq!(split.messages(), whole.messages());
        assert_eq!(split.bytes(), whole.bytes());
        assert_eq!(
            split.transit_histogram().max(),
            whole.transit_histogram().max()
        );
    }

    #[test]
    fn min_delay_bounds_every_send() {
        for cfg in [NetConfig::default(), NetConfig::slow()] {
            let mut net = Network::new(4, cfg);
            let arrival = net.send(1000, NodeId(0), NodeId(1), 8);
            assert_eq!(
                arrival - 1000,
                cfg.min_delay(),
                "8-byte control message is minimal"
            );
            let arrival = net.send(5000, NodeId(1), NodeId(2), 144);
            assert!(arrival - 5000 >= cfg.min_delay());
        }
    }

    #[test]
    fn adopt_egress_reassembles_partitioned_state() {
        // A shard network carries node 0's egress traffic; the hub carries
        // ingress. Reassembly must equal the monolithic run.
        let mut mono = n(NetConfig::default());
        let mut shard = n(NetConfig::default());
        let mut hub = n(NetConfig::default());
        for i in 0..5 {
            let t = i * 2;
            mono.send(t, NodeId(0), NodeId(2), 80);
            let head = shard.inject(t, NodeId(0), 80);
            hub.deliver(t, head, NodeId(2), 80);
        }
        hub.adopt_egress(&shard, 0..1);
        hub.add_traffic(shard.messages(), shard.bytes());
        assert_eq!(
            format!("{:?}", hub.stats_snapshot()),
            format!("{:?}", mono.stats_snapshot())
        );
    }

    #[test]
    fn transit_histogram_records_end_to_end_times() {
        let mut net = n(NetConfig::default());
        let a = net.send(0, NodeId(0), NodeId(1), 16); // uncontended
        let _b = net.send(0, NodeId(0), NodeId(1), 16); // queues at egress
        let h = net.transit_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(a)); // first message left at time 0
        assert!(h.max().unwrap() > a);
    }
}
