//! Property tests for the network model: per-pair FIFO delivery (the
//! directory protocol's write-back / forward-miss race depends on it),
//! latency lower bounds, and port-bandwidth conservation.
//!
//! Cases are generated with the in-tree deterministic RNG, so the suite
//! is hermetic and repeatable.

use ccn_mem::NodeId;
use ccn_net::{NetConfig, Network};
use ccn_sim::SplitMix64;

const CASES: u64 = 128;

/// Messages between the same (source, destination) pair are delivered
/// in send order even under cross traffic.
#[test]
fn per_pair_fifo() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF1F0 + case);
        let n = 2 + rng.next_below(78) as usize;
        let mut net = Network::new(4, NetConfig::default());
        let mut last: std::collections::HashMap<(u16, u16), u64> = Default::default();
        for i in 0..n {
            let from = rng.next_below(4) as u16;
            let to = rng.next_below(4) as u16;
            let bytes = 16 + rng.next_below(144);
            let t = net.send(i as u64, NodeId(from), NodeId(to), bytes);
            if let Some(&prev) = last.get(&(from, to)) {
                assert!(
                    t > prev,
                    "case {case}: pair ({from},{to}) reordered: {t} <= {prev}"
                );
            }
            last.insert((from, to), t);
        }
    }
}

/// No message arrives faster than the physics allows: two NI
/// overheads, two serialization steps, and the fall-through latency.
#[test]
fn latency_lower_bound() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x1A7E + case);
        let from = rng.next_below(4) as u16;
        let to = rng.next_below(4) as u16;
        let bytes = 16 + rng.next_below(2032);
        let time = rng.next_below(100_000);
        let cfg = NetConfig::default();
        let mut net = Network::new(4, cfg);
        let arrival = net.send(time, NodeId(from), NodeId(to), bytes);
        let ser = bytes.div_ceil(cfg.bytes_per_cycle).max(1);
        let min = time + 2 * cfg.ni_overhead + 2 * ser + cfg.latency_cycles;
        assert_eq!(
            arrival, min,
            "case {case}: single message must see no contention"
        );
    }
}

/// Bytes are conserved in the statistics.
#[test]
fn byte_accounting() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB17E + case);
        let n = 1 + rng.next_below(49) as usize;
        let mut net = Network::new(3, NetConfig::default());
        let mut total = 0;
        for i in 0..n {
            let from = rng.next_below(3) as u16;
            let to = rng.next_below(3) as u16;
            let bytes = 16 + rng.next_below(284);
            net.send(i as u64, NodeId(from), NodeId(to), bytes);
            total += bytes;
        }
        assert_eq!(net.bytes(), total, "case {case}");
        assert_eq!(net.messages(), n as u64, "case {case}");
    }
}

/// A saturated egress port delays messages by at least their
/// aggregate serialization time.
#[test]
fn egress_serialization_accumulates() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xE54A + case);
        let count = 2 + rng.next_below(38);
        let bytes = 16 + rng.next_below(144);
        let cfg = NetConfig::default();
        let mut net = Network::new(2, cfg);
        let ser = bytes.div_ceil(cfg.bytes_per_cycle).max(1);
        let mut last = 0;
        for _ in 0..count {
            last = net.send(0, NodeId(0), NodeId(1), bytes);
        }
        let min_last = 2 * cfg.ni_overhead + cfg.latency_cycles + (count + 1) * ser;
        assert!(last >= min_last, "case {case}: {last} < {min_last}");
    }
}
