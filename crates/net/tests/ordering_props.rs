//! Property tests for the network model: per-pair FIFO delivery (the
//! directory protocol's write-back / forward-miss race depends on it),
//! latency lower bounds, and port-bandwidth conservation.

use ccn_mem::NodeId;
use ccn_net::{NetConfig, Network};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Messages between the same (source, destination) pair are delivered
    /// in send order even under cross traffic.
    #[test]
    fn per_pair_fifo(
        sends in prop::collection::vec((0u16..4, 0u16..4, 16u64..160), 2..80),
    ) {
        let mut net = Network::new(4, NetConfig::default());
        let mut last: std::collections::HashMap<(u16, u16), u64> = Default::default();
        for (i, &(from, to, bytes)) in sends.iter().enumerate() {
            let t = net.send(i as u64, NodeId(from), NodeId(to), bytes);
            if let Some(&prev) = last.get(&(from, to)) {
                prop_assert!(t > prev, "pair ({from},{to}) reordered: {t} <= {prev}");
            }
            last.insert((from, to), t);
        }
    }

    /// No message arrives faster than the physics allows: two NI
    /// overheads, two serialization steps, and the fall-through latency.
    #[test]
    fn latency_lower_bound(
        from in 0u16..4,
        to in 0u16..4,
        bytes in 16u64..2048,
        time in 0u64..100_000,
    ) {
        let cfg = NetConfig::default();
        let mut net = Network::new(4, cfg);
        let arrival = net.send(time, NodeId(from), NodeId(to), bytes);
        let ser = bytes.div_ceil(cfg.bytes_per_cycle).max(1);
        let min = time + 2 * cfg.ni_overhead + 2 * ser + cfg.latency_cycles;
        prop_assert_eq!(arrival, min, "single message must see no contention");
    }

    /// Bytes are conserved in the statistics.
    #[test]
    fn byte_accounting(
        sends in prop::collection::vec((0u16..3, 0u16..3, 16u64..300), 1..50),
    ) {
        let mut net = Network::new(3, NetConfig::default());
        let mut total = 0;
        for (i, &(from, to, bytes)) in sends.iter().enumerate() {
            net.send(i as u64, NodeId(from), NodeId(to), bytes);
            total += bytes;
        }
        prop_assert_eq!(net.bytes(), total);
        prop_assert_eq!(net.messages(), sends.len() as u64);
    }

    /// A saturated egress port delays messages by at least their
    /// aggregate serialization time.
    #[test]
    fn egress_serialization_accumulates(count in 2u64..40, bytes in 16u64..160) {
        let cfg = NetConfig::default();
        let mut net = Network::new(2, cfg);
        let ser = bytes.div_ceil(cfg.bytes_per_cycle).max(1);
        let mut last = 0;
        for _ in 0..count {
            last = net.send(0, NodeId(0), NodeId(1), bytes);
        }
        let min_last = 2 * cfg.ni_overhead + cfg.latency_cycles + (count + 1) * ser;
        prop_assert!(last >= min_last, "{last} < {min_last}");
    }
}
