//! Discrete-event simulation engine for the CC-NUMA coherence-controller study.
//!
//! This crate is the timing substrate shared by every other crate in the
//! workspace. It provides:
//!
//! * [`EventQueue`] — a deterministic time-ordered event queue. Events with
//!   equal timestamps are delivered in insertion order, so a simulation run
//!   is exactly reproducible.
//! * [`Server`] — a FIFO *reservation server* used to model bandwidth
//!   resources (bus address slots, data buses, memory banks, directory DRAM,
//!   network ports). A client asks for the resource at time `t` for `d`
//!   cycles and receives the grant time; the server records utilization and
//!   queueing-delay statistics as a side effect.
//! * [`Port`] — a typed message endpoint that wraps a payload into the
//!   queue's event type, so components talk to each other through named
//!   channels instead of scheduling raw events ad hoc.
//! * [`Component`] — the statistics spine: one interface through which a
//!   machine model walks every hardware component for snapshots
//!   ([`ComponentStats`]) and measurement-window resets.
//! * [`stats`] — counters and running means used to produce the paper's
//!   communication statistics (Tables 6 and 7).
//! * [`SplitMix64`] — a tiny deterministic RNG for components that need
//!   reproducible pseudo-randomness without pulling in an external crate.
//!
//! Time is measured in **compute-processor cycles** of 5 ns (200 MHz), the
//! unit used throughout the ISCA '97 paper. The SMP bus and the controllers
//! run at 100 MHz, i.e. one bus cycle is [`CPU_CYCLES_PER_BUS_CYCLE`] CPU
//! cycles.
//!
//! # Example
//!
//! ```
//! use ccn_sim::{EventQueue, Server};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(10, "fire");
//! let mut server = Server::new("bus");
//! let grant = server.acquire(5, 4); // busy 5..9
//! assert_eq!(grant, 5);
//! assert_eq!(server.acquire(6, 4), 9); // queued behind the first use
//! let (time, event) = queue.pop().unwrap();
//! assert_eq!((time, event), (10, "fire"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc_gate;
pub mod component;
mod event;
pub mod hash;
pub mod par;
pub mod pool;
mod port;
mod rng;
mod server;
pub mod stats;

pub use component::{Component, ComponentStats};
pub use event::{EventQueue, ScheduleSink};
pub use hash::{FxHashMap, FxHashSet};
pub use port::Port;
pub use rng::SplitMix64;
pub use server::Server;
pub use stats::Histogram;

/// Simulation time in compute-processor cycles (5 ns each, 200 MHz).
pub type Cycle = u64;

/// Number of CPU cycles per 100 MHz bus/controller cycle.
pub const CPU_CYCLES_PER_BUS_CYCLE: Cycle = 2;

/// Duration of one compute-processor cycle in nanoseconds.
pub const NS_PER_CPU_CYCLE: f64 = 5.0;

/// Converts a cycle count to nanoseconds.
///
/// ```
/// assert_eq!(ccn_sim::cycles_to_ns(14), 70.0); // network point-to-point
/// ```
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 * NS_PER_CPU_CYCLE
}

/// Converts nanoseconds to a cycle count, rounding to the nearest cycle.
///
/// ```
/// assert_eq!(ccn_sim::ns_to_cycles(70.0), 14);
/// ```
pub fn ns_to_cycles(ns: f64) -> Cycle {
    (ns / NS_PER_CPU_CYCLE).round() as Cycle
}
