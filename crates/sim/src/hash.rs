//! Deterministic fast hashing for simulator-side maps.
//!
//! The standard library's default hasher (SipHash with a per-process
//! random key) is a sound default for data structures exposed to
//! untrusted input, but every map in this workspace is keyed by values
//! the simulator itself produces — line addresses, node ids, handler
//! kinds. For those, SipHash costs more per lookup than the lookup
//! itself, and its random seed makes iteration order vary from run to
//! run, which is hostile to a simulator whose whole contract is
//! determinism.
//!
//! [`FxHasher`] is the multiply-rotate hash used by the Rust compiler's
//! own tables: a few ALU ops per word, zero setup, and fully
//! deterministic. It offers no DoS resistance, so it must only ever see
//! simulator-generated keys. Anything that feeds a digest or artifact
//! must remain sort-based (see `encode_canonical` and
//! `functional_snapshot`), never hash-iteration based, so reported
//! results are independent of the hasher in use.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The odd multiplier from the Firefox/rustc "Fx" hash: close to
/// 2^64 / phi, so consecutive keys spread across the table.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher for trusted keys.
///
/// State is folded one word at a time with rotate-xor-multiply. The
/// rotate guarantees every input bit reaches every output bit after a
/// couple of rounds; the multiply mixes within the word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fold full words, then the tail. `chunks_exact` keeps this
        // branch-light for the common 8-byte keys.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word) | ((tail.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// Builds [`FxHasher`]s; stateless, so every map starts from the same
/// (deterministic) hash state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. For simulator-generated keys only.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`]. For simulator-generated keys only.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        // Two independently-built hashers agree — no per-process seed.
        assert_eq!(hash_of(&0xdead_beef_u64), hash_of(&0xdead_beef_u64));
        assert_eq!(hash_of(&"line"), hash_of(&"line"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(&1u64);
        let b = hash_of(&2u64);
        assert_ne!(a, b);
        // Byte strings that differ only in length must not collide
        // (the tail fold tags the length into the top byte).
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn consecutive_u64_keys_spread_across_low_bits() {
        // Hash tables index by the low bits; make sure sequential line
        // addresses don't all land in one bucket.
        let mut low_bits = std::collections::HashSet::new();
        for k in 0u64..64 {
            low_bits.insert(hash_of(&k) & 0x3f);
        }
        assert!(
            low_bits.len() > 32,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn maps_and_sets_behave() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        m.insert(7, 2);
        assert_eq!(m.get(&7), Some(&2));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }
}
