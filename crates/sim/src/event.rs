//! Deterministic time-ordered event queue.
//!
//! Implemented as a calendar queue: a fixed wheel of per-cycle buckets
//! covering the near future, with a binary-heap overflow for events
//! scheduled beyond the wheel's horizon. Discrete-event simulators
//! schedule almost exclusively a few tens to hundreds of cycles ahead
//! (component latencies), so nearly every event takes the O(1)
//! bucket path; the heap only sees rare far-future timers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// Log2 of the wheel size. 1024 cycles comfortably covers every
/// component latency in the simulated machine (the slowest single hop,
/// uncontended DRAM plus network, is well under 300 CPU cycles), so the
/// overflow heap is cold in practice.
const WHEEL_BITS: u32 = 10;
/// Cycles (and buckets) covered by the wheel window `[base, base+SPAN)`.
const WHEEL_SPAN: Cycle = 1 << WHEEL_BITS;
/// Maps an absolute cycle to its bucket index.
const WHEEL_MASK: Cycle = WHEEL_SPAN - 1;

/// A deterministic discrete-event queue.
///
/// Events are delivered in non-decreasing timestamp order; events scheduled
/// for the same cycle are delivered in the order they were scheduled (FIFO).
/// This makes every simulation run bit-for-bit reproducible.
///
/// The payload type `E` is chosen by the simulator that owns the queue; the
/// engine itself attaches no meaning to it.
///
/// # Example
///
/// ```
/// let mut q = ccn_sim::EventQueue::new();
/// q.schedule(20, "b");
/// q.schedule(10, "a");
/// q.schedule(20, "c");
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((20, "b")));
/// assert_eq!(q.pop(), Some((20, "c")));
/// assert_eq!(q.pop(), None);
/// ```
///
/// # Invariants
///
/// * Every bucketed event's timestamp lies in `[base, base + SPAN)`, so a
///   bucket only ever holds events of a single absolute cycle and needs no
///   per-event timestamp or ordering key — insertion order *is* FIFO order.
/// * Every overflow event's timestamp is `>= base + SPAN` (restored by
///   migration at the top of each [`pop`](Self::pop)). Because migration
///   runs before any later `schedule` call can add a same-cycle event to a
///   bucket, migrated (earlier-scheduled) events always land in front:
///   global FIFO order is preserved without storing sequence numbers in
///   the wheel.
/// * `now <= `(every pending timestamp), enforced by the scheduling
///   assertion, so sliding `base` up to `now` never strands an event
///   behind the window.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `SPAN` buckets; bucket `t & MASK` holds the events for cycle `t`
    /// as a `(head, tail)` intrusive FIFO through `slab` (`NIL` = empty).
    ///
    /// One shared slab instead of a `VecDeque` per bucket: bursty
    /// workloads pile thousands of same-cycle events into whichever
    /// bucket the burst lands on, and per-bucket buffers would each have
    /// to be sized for the worst burst (megabytes of mostly-idle
    /// capacity) to keep the steady state allocation-free. The slab is
    /// sized once for the *total* pending high-water mark, which every
    /// bucket shares.
    wheel: Box<[(u32, u32)]>,
    /// Node storage for the wheel's intrusive lists.
    slab: Vec<Slot<E>>,
    /// Head of the free list through `slab` (`NIL` = empty).
    free: u32,
    /// Events in the wheel (the buckets' total length).
    wheel_len: usize,
    /// Start of the wheel's window; only ever advances.
    base: Cycle,
    /// Events at or beyond `base + SPAN`, ordered by `(time, seq)`.
    overflow: BinaryHeap<Far<E>>,
    /// Scheduling sequence number; doubles as the lifetime event count.
    seq: u64,
    /// High-water mark of concurrently pending events, for capacity
    /// planning (the zero-alloc gate needs buckets sized past this).
    max_pending: usize,
    now: Cycle,
}

/// Sentinel for "no slot" in the wheel's intrusive lists.
const NIL: u32 = u32::MAX;

/// One slab slot: an event plus the link to the next slot of its bucket
/// (or of the free list). `None` while on the free list.
#[derive(Debug)]
struct Slot<E> {
    event: Option<E>,
    next: u32,
}

/// An overflow (far-future) event. The sequence number breaks timestamp
/// ties so same-cycle events migrate to their bucket in FIFO order.
#[derive(Debug)]
struct Far<E> {
    key: Reverse<(Cycle, u64)>,
    event: E,
}

impl<E> PartialEq for Far<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Far<E> {}
impl<E> PartialOrd for Far<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Far<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at cycle zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue pre-sized for `events` concurrently
    /// pending events, so neither warm-up (e.g. scheduling every
    /// processor's initial resume at cycle zero) nor a steady state
    /// that stays under the high-water mark ever reallocates. The
    /// shared slab means the bound covers any distribution of those
    /// events across cycles, including all of them landing on one.
    pub fn with_capacity(events: usize) -> Self {
        EventQueue {
            wheel: vec![(NIL, NIL); WHEEL_SPAN as usize].into_boxed_slice(),
            slab: Vec::with_capacity(events),
            free: NIL,
            wheel_len: 0,
            base: 0,
            overflow: BinaryHeap::with_capacity(events.min(64)),
            seq: 0,
            max_pending: 0,
            now: 0,
        }
    }

    /// Takes a slab slot for `event` and returns its index, reusing the
    /// free list when possible.
    fn alloc_slot(&mut self, event: E) -> u32 {
        let idx = self.free;
        if idx == NIL {
            assert!(self.slab.len() < NIL as usize, "event slab full");
            self.slab.push(Slot {
                event: Some(event),
                next: NIL,
            });
            self.slab.len() as u32 - 1
        } else {
            let slot = &mut self.slab[idx as usize];
            self.free = slot.next;
            slot.event = Some(event);
            slot.next = NIL;
            idx
        }
    }

    /// Appends `event` to the bucket for absolute cycle `time` (which
    /// must be inside the wheel window).
    fn push_bucket(&mut self, time: Cycle, event: E) {
        let idx = self.alloc_slot(event);
        let b = (time & WHEEL_MASK) as usize;
        let (_, tail) = self.wheel[b];
        if tail == NIL {
            self.wheel[b] = (idx, idx);
        } else {
            self.slab[tail as usize].next = idx;
            self.wheel[b].1 = idx;
        }
        self.wheel_len += 1;
    }

    /// Removes and returns the first event of `bucket`, if any,
    /// returning its slot to the free list.
    fn pop_bucket(&mut self, bucket: usize) -> Option<E> {
        let (head, _) = self.wheel[bucket];
        if head == NIL {
            return None;
        }
        let slot = &mut self.slab[head as usize];
        let next = slot.next;
        let event = slot.event.take().expect("occupied bucket slot");
        slot.next = self.free;
        self.free = head;
        if next == NIL {
            self.wheel[bucket] = (NIL, NIL);
        } else {
            self.wheel[bucket].0 = next;
        }
        self.wheel_len -= 1;
        Some(event)
    }

    /// Schedules `event` to fire at absolute cycle `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before the last popped event); a
    /// simulator that schedules into the past has a causality bug and must
    /// fail loudly rather than silently reorder history.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled at cycle {time} but the clock is already at {}",
            self.now
        );
        self.seq += 1;
        self.max_pending = self
            .max_pending
            .max(self.wheel_len + self.overflow.len() + 1);
        // `time >= now >= base` outside of `pop`, so this subtraction
        // cannot wrap.
        if time - self.base < WHEEL_SPAN {
            self.push_bucket(time, event);
        } else {
            self.overflow.push(Far {
                key: Reverse((time, self.seq)),
                event,
            });
        }
    }

    /// Removes and returns the next event as `(time, event)`, advancing the
    /// clock to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.wheel_len == 0 {
            // Either empty, or everything pending is far-future: jump the
            // window straight to the earliest overflow timestamp.
            let &Far {
                key: Reverse((first, _)),
                ..
            } = self.overflow.peek()?;
            self.base = first;
        } else if self.base < self.now {
            // Slide the window forward. Buckets for cycles before `now`
            // are necessarily empty (their events would be in the past),
            // so no wheel entry is stranded.
            self.base = self.now;
        }
        // Pull newly-in-window overflow events into their buckets. Heap
        // order is (time, seq), so same-cycle events arrive FIFO.
        while let Some(&Far {
            key: Reverse((t, _)),
            ..
        }) = self.overflow.peek()
        {
            if t - self.base >= WHEEL_SPAN {
                break;
            }
            let far = self.overflow.pop().expect("peeked entry");
            self.push_bucket(t, far.event);
        }
        // The earliest pending event is now in the wheel, at or after
        // max(base, now) and before base + SPAN. Empty buckets behind
        // `now` are never rescanned, so the scan cost amortizes to
        // O(time advanced) across a run.
        let mut t = self.base.max(self.now);
        loop {
            debug_assert!(t < self.base + WHEEL_SPAN, "scan ran past the window");
            if let Some(event) = self.pop_bucket((t & WHEEL_MASK) as usize) {
                self.now = t;
                return Some((t, event));
            }
            t += 1;
        }
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.wheel_len > 0 {
            // The wheel's minimum beats everything in overflow (which is
            // entirely at or beyond base + SPAN).
            let mut t = self.base.max(self.now);
            loop {
                debug_assert!(t < self.base + WHEEL_SPAN, "peek ran past the window");
                if self.wheel[(t & WHEEL_MASK) as usize].0 != NIL {
                    return Some(t);
                }
                t += 1;
            }
        }
        self.overflow.peek().map(|far| far.key.0 .0)
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.wheel_len == 0 && self.overflow.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.seq
    }

    /// High-water mark of concurrently pending events over the queue's
    /// lifetime.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A destination for scheduled events.
///
/// The sequential [`EventQueue`] is the canonical sink; the parallel
/// execution mode substitutes a shard-local wheel
/// ([`crate::par::ShardWheel`]-backed) behind the same interface, so
/// model code that schedules through a [`crate::Port`] (or directly
/// through this trait) is oblivious to which engine is running it.
pub trait ScheduleSink<E> {
    /// Schedules `event` for delivery at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the sink's past (same contract as
    /// [`EventQueue::schedule`]).
    fn schedule(&mut self, at: Cycle, event: E);

    /// The sink's current cycle: the delivery time of the most recently
    /// popped event.
    fn now(&self) -> Cycle;
}

impl<E> ScheduleSink<E> for EventQueue<E> {
    #[inline]
    fn schedule(&mut self, at: Cycle, event: E) {
        EventQueue::schedule(self, at, event);
    }

    #[inline]
    fn now(&self) -> Cycle {
        EventQueue::now(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 'a');
        q.schedule(3, 'b');
        q.schedule(9, 'c');
        assert_eq!(q.pop(), Some((3, 'b')));
        assert_eq!(q.pop(), Some((5, 'a')));
        assert_eq!(q.pop(), Some((9, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(10, ());
        q.schedule(20, ());
        q.pop();
        assert_eq!(q.now(), 10);
        q.schedule(15, ()); // future relative to 10: fine
        q.pop();
        assert_eq!(q.now(), 15);
    }

    #[test]
    #[should_panic(expected = "scheduled at cycle")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn counts_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(4, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2));
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.total_scheduled(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_survive_the_overflow_path() {
        let mut q = EventQueue::new();
        // Far beyond the wheel window, plus a near event.
        q.schedule(5, "near");
        q.schedule(1_000_000, "far-b");
        q.schedule(1_000_000, "far-c"); // same-cycle tie across overflow
        q.schedule(999_999, "far-a");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((5, "near")));
        // The wheel is empty: the window must jump, not scan a million slots.
        assert_eq!(q.peek_time(), Some(999_999));
        assert_eq!(q.pop(), Some((999_999, "far-a")));
        assert_eq!(q.pop(), Some((1_000_000, "far-b")));
        assert_eq!(q.pop(), Some((1_000_000, "far-c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn migrated_and_direct_events_interleave_fifo() {
        let mut q = EventQueue::new();
        let target = 3 * WHEEL_SPAN; // starts out beyond the window
        q.schedule(target, "scheduled-first");
        // Walk the clock forward until `target` is inside the window,
        // then schedule a same-cycle event directly into the bucket.
        let mut t = 0;
        while t + WHEEL_SPAN <= target {
            q.schedule(t + 1, "tick");
            let (pt, _) = q.pop().unwrap();
            t = pt;
        }
        q.schedule(target, "scheduled-second");
        assert_eq!(q.pop(), Some((target, "scheduled-first")));
        assert_eq!(q.pop(), Some((target, "scheduled-second")));
    }

    #[test]
    fn window_boundary_events_classify_correctly() {
        let mut q = EventQueue::new();
        q.schedule(WHEEL_SPAN - 1, "last-in-window");
        q.schedule(WHEEL_SPAN, "first-beyond");
        assert_eq!(q.pop(), Some((WHEEL_SPAN - 1, "last-in-window")));
        assert_eq!(q.pop(), Some((WHEEL_SPAN, "first-beyond")));
        assert_eq!(q.pop(), None);
    }
}
