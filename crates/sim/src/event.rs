//! Deterministic time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A deterministic discrete-event queue.
///
/// Events are delivered in non-decreasing timestamp order; events scheduled
/// for the same cycle are delivered in the order they were scheduled (FIFO).
/// This makes every simulation run bit-for-bit reproducible.
///
/// The payload type `E` is chosen by the simulator that owns the queue; the
/// engine itself attaches no meaning to it.
///
/// # Example
///
/// ```
/// let mut q = ccn_sim::EventQueue::new();
/// q.schedule(20, "b");
/// q.schedule(10, "a");
/// q.schedule(20, "c");
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((20, "b")));
/// assert_eq!(q.pop(), Some((20, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Cycle,
    scheduled: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Cycle, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at cycle zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            scheduled: 0,
        }
    }

    /// Schedules `event` to fire at absolute cycle `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before the last popped event); a
    /// simulator that schedules into the past has a causality bug and must
    /// fail loudly rather than silently reorder history.
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(
            time >= self.now,
            "event scheduled at cycle {time} but the clock is already at {}",
            self.now
        );
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry {
            key: Reverse((time, self.seq)),
            event,
        });
    }

    /// Removes and returns the next event as `(time, event)`, advancing the
    /// clock to its timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        let Reverse((time, _)) = entry.key;
        debug_assert!(time >= self.now);
        self.now = time;
        Some((time, entry.event))
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 'a');
        q.schedule(3, 'b');
        q.schedule(9, 'c');
        assert_eq!(q.pop(), Some((3, 'b')));
        assert_eq!(q.pop(), Some((5, 'a')));
        assert_eq!(q.pop(), Some((9, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(10, ());
        q.schedule(20, ());
        q.pop();
        assert_eq!(q.now(), 10);
        q.schedule(15, ()); // future relative to 10: fine
        q.pop();
        assert_eq!(q.now(), 15);
    }

    #[test]
    #[should_panic(expected = "scheduled at cycle")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn counts_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(4, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2));
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.total_scheduled(), 2);
        assert!(q.is_empty());
    }
}
