//! Tiny deterministic RNG.

/// SplitMix64: a tiny, fast, deterministic pseudo-random generator.
///
/// Used where the simulator itself needs reproducible randomness (e.g. the
/// protocol torture workloads) without pulling `rand` into the engine's
/// dependency graph. Not cryptographically secure; statistically fine for
/// workload generation.
///
/// ```
/// let mut a = ccn_sim::SplitMix64::new(42);
/// let mut b = ccn_sim::SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style multiply-shift; bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent child generator seeded from this stream.
    ///
    /// Lets one master seed drive many logically separate random choices
    /// (e.g. one stream per random walk in the `ccn-verify` state-space
    /// sampler) without the streams aliasing each other: drawing more
    /// values from a child never shifts its siblings.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_is_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_roughly_uniform() {
        let mut r = SplitMix64::new(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut master = SplitMix64::new(11);
        let mut c1 = master.fork();
        let mut c2 = master.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
        // Same master seed re-derives the same children.
        assert_eq!(SplitMix64::new(11).fork(), SplitMix64::new(11).fork());
        // Draining a child does not shift its sibling.
        let mut m = SplitMix64::new(5);
        let mut a = m.fork();
        for _ in 0..100 {
            a.next_u64();
        }
        let b_first = m.fork().next_u64();
        let mut m2 = SplitMix64::new(5);
        let _ = m2.fork();
        assert_eq!(m2.fork().next_u64(), b_first);
    }
}
