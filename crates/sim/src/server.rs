//! FIFO reservation servers for bandwidth resources.

use crate::stats::{Accumulator, Histogram};
use crate::Cycle;

/// A FIFO *reservation server*: the timing model for a pipelined bandwidth
/// resource such as a bus address slot stream, a data bus, a memory bank,
/// directory DRAM, or a network port.
///
/// A client requests the resource at time `t` for `d` cycles with
/// [`acquire`](Server::acquire) and receives the *grant time*
/// `max(t, next_free)`; the server becomes free again at `grant + d`.
/// Queueing delay (`grant - t`) and busy time are recorded so that the
/// simulator can report utilizations and average queueing delays the way
/// Tables 6 and 7 of the paper do.
///
/// Because grants are handed out in call order, the model is exact for a
/// FIFO resource as long as calls are made in non-decreasing request-time
/// order, which the event-driven simulator guarantees up to the small
/// look-ahead inside a single protocol handler (a handler reserves the bus
/// and memory a few cycles into its own future; see the design notes in
/// DESIGN.md).
///
/// # Example
///
/// ```
/// let mut bank = ccn_sim::Server::new("memory bank 0");
/// assert_eq!(bank.acquire(100, 8), 100);
/// assert_eq!(bank.acquire(100, 8), 108); // second request queues
/// assert_eq!(bank.acquire(500, 8), 500); // idle gap, immediate grant
/// assert_eq!(bank.busy_cycles(), 24);
/// ```
#[derive(Debug, Clone)]
pub struct Server {
    name: &'static str,
    next_free: Cycle,
    busy: Cycle,
    queue_delay: Accumulator,
    queue_delay_hist: Histogram,
}

impl Server {
    /// Creates an idle server. `name` is used only in `Debug` output and
    /// diagnostics.
    pub fn new(name: &'static str) -> Self {
        Server {
            name,
            next_free: 0,
            busy: 0,
            queue_delay: Accumulator::new(),
            queue_delay_hist: Histogram::new(),
        }
    }

    /// Reserves the resource at request time `time` for `duration` cycles
    /// and returns the grant time.
    pub fn acquire(&mut self, time: Cycle, duration: Cycle) -> Cycle {
        let grant = self.next_free.max(time);
        self.next_free = grant + duration;
        self.busy += duration;
        self.queue_delay.record((grant - time) as f64);
        self.queue_delay_hist.record(grant - time);
        grant
    }

    /// Like [`acquire`](Server::acquire), but returns the *completion* time
    /// (`grant + duration`) instead of the grant time.
    pub fn acquire_until(&mut self, time: Cycle, duration: Cycle) -> Cycle {
        self.acquire(time, duration) + duration
    }

    /// The earliest time a new request made now would be granted.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles of reserved (busy) time.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy
    }

    /// Number of acquisitions served.
    pub fn requests(&self) -> u64 {
        self.queue_delay.count()
    }

    /// Mean queueing delay in cycles over all acquisitions (0 if none).
    pub fn mean_queue_delay(&self) -> f64 {
        self.queue_delay.mean()
    }

    /// The full queueing-delay distribution (log2 buckets, cycles) —
    /// Table 6 reports means, but the distribution tail is what separates
    /// contention policies.
    pub fn queue_delay_histogram(&self) -> &Histogram {
        &self.queue_delay_hist
    }

    /// Utilization over an observation window of `elapsed` cycles.
    ///
    /// Returns 0 when `elapsed` is zero.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy as f64 / elapsed as f64
        }
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets statistics (busy time and queue-delay records) without
    /// forgetting the current reservation horizon.
    ///
    /// Used when the measured interval starts after warm-up (the paper
    /// reports the parallel phase only).
    pub fn reset_stats(&mut self) {
        self.busy = 0;
        self.queue_delay = Accumulator::new();
        self.queue_delay_hist = Histogram::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_fifo_and_tracks_busy() {
        let mut s = Server::new("t");
        assert_eq!(s.acquire(10, 5), 10);
        assert_eq!(s.acquire(11, 5), 15);
        assert_eq!(s.acquire(40, 2), 40);
        assert_eq!(s.busy_cycles(), 12);
        assert_eq!(s.requests(), 3);
    }

    #[test]
    fn queue_delay_mean() {
        let mut s = Server::new("t");
        s.acquire(0, 10); // delay 0
        s.acquire(0, 10); // delay 10
        s.acquire(0, 10); // delay 20
        assert_eq!(s.mean_queue_delay(), 10.0);
    }

    #[test]
    fn utilization_window() {
        let mut s = Server::new("t");
        s.acquire(0, 25);
        s.acquire(50, 25);
        assert!((s.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn acquire_until_is_completion() {
        let mut s = Server::new("t");
        assert_eq!(s.acquire_until(7, 3), 10);
        assert_eq!(s.acquire_until(7, 3), 13);
    }

    #[test]
    fn reset_stats_keeps_horizon() {
        let mut s = Server::new("t");
        s.acquire(0, 100);
        s.reset_stats();
        assert_eq!(s.busy_cycles(), 0);
        assert_eq!(s.requests(), 0);
        assert_eq!(s.queue_delay_histogram().count(), 0);
        // still reserved until 100
        assert_eq!(s.acquire(0, 1), 100);
    }

    #[test]
    fn queue_delay_histogram_tracks_acquisitions() {
        let mut s = Server::new("t");
        s.acquire(0, 10); // delay 0
        s.acquire(0, 10); // delay 10
        s.acquire(0, 10); // delay 20
        let h = s.queue_delay_histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(20));
        // The histogram's exact aggregates agree with the accumulator.
        assert_eq!(h.mean(), s.mean_queue_delay());
    }
}
