//! Conservative parallel discrete-event execution.
//!
//! This module is the engine-side substrate for running one simulation on
//! several threads while reproducing the sequential [`EventQueue`](crate::EventQueue)
//! schedule *byte for byte*. The model is partitioned into shards, each
//! owning a [`ShardWheel`] (a calendar of per-cycle FIFO buckets). Shards
//! advance independently through bounded time windows whose width is the
//! model's **lookahead** — a lower bound on the delay of any cross-shard
//! interaction. Cross-shard messages are exchanged through [`Ring`]
//! buffers drained at window barriers, where a deterministic merge rule
//! reconstructs the exact sequential ordering.
//!
//! # The merge rule
//!
//! The sequential queue delivers events in `(time, seq)` order, where
//! `seq` is the global schedule-call order: same-cycle events pop in the
//! FIFO order their `schedule` calls were made. A schedule call happens
//! either before the run (a *seed*) or during the execution of a parent
//! event; therefore the schedule-call order of a bucket is exactly
//!
//! `(seed seq)` first, then `(parent execution position, emission index)`.
//!
//! Each scheduled entry carries an [`EKey`] encoding precisely that:
//! seeds are `Init{seq}`; entries whose parent executed in a *finished*
//! window are `Sealed{pc, pr, idx}` (parent cycle, parent rank within its
//! cycle, emission index); entries born in the *current* window are
//! `Fresh{shard, xi, idx}`, pointing at the parent's slot in its shard's
//! per-window execution log. Because every cross-shard interaction is
//! delayed by at least the lookahead, no event can gain same-window
//! parents on another shard — so each shard's window execution is the
//! exact projection of the sequential schedule, appends to a bucket
//! always arrive in canonical order, and a bucket is a plain
//! append-only `Vec`. At the window barrier a [`Merger`] ranks every
//! executed event cycle by cycle (a k-way merge of the per-shard logs by
//! key), yielding the canonical global order; `Fresh` keys are then
//! patched to `Sealed` form and the logs are discarded.
//!
//! The wheel enforces the conservative safety property at the boundary:
//! inserting an event below a shard's window floor panics (a *lookahead
//! violation*) rather than silently reordering — see the adversarial
//! tests in `crates/sim/tests/par_differential.rs`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

use crate::Cycle;

/// Shard index, compact for key storage.
pub type ShardId = u16;

/// Deterministic merge key of one scheduled entry. See the module docs
/// for the ordering it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EKey {
    /// Seeded before the run, in seed order.
    Init {
        /// Global seed sequence number.
        seq: u64,
    },
    /// Scheduled by a parent whose global position is finalized.
    Sealed {
        /// Parent's execution cycle.
        pc: Cycle,
        /// Parent's rank among all events executed at `pc`.
        pr: u64,
        /// Emission index within the parent's execution.
        idx: u32,
    },
    /// Scheduled this window by a parent identified through its shard's
    /// execution log; resolved to `Sealed` form at the window barrier.
    Fresh {
        /// Parent's shard.
        shard: ShardId,
        /// Parent's index in that shard's current-window execution log.
        xi: u32,
        /// Emission index within the parent's execution.
        idx: u32,
    },
}

/// A fully resolved, totally ordered form of an [`EKey`].
///
/// `Init` maps to class 0 (seeds precede same-cycle descendants, since
/// their schedule calls happen before the run); generated entries map to
/// class 1 ordered by `(parent cycle, parent rank, emission index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Resolved {
    class: u8,
    pc: Cycle,
    pr: u64,
    idx: u64,
}

impl Resolved {
    fn of_sealed(key: &EKey) -> Resolved {
        match *key {
            EKey::Init { seq } => Resolved {
                class: 0,
                pc: 0,
                pr: 0,
                idx: seq,
            },
            EKey::Sealed { pc, pr, idx } => Resolved {
                class: 1,
                pc,
                pr,
                idx: u64::from(idx),
            },
            EKey::Fresh { .. } => panic!("unpatched Fresh key at a sealed-only comparison"),
        }
    }
}

/// One executed event in a shard's per-window log: the key it ran under,
/// the cycle it ran at, and caller metadata (e.g. the event payload for
/// differential tests, or trace bookkeeping for the machine).
#[derive(Debug, Clone)]
pub struct LogRec<P> {
    /// Delivery cycle the event executed at.
    pub cycle: Cycle,
    /// The key the entry was scheduled under.
    pub key: EKey,
    /// Caller-defined metadata.
    pub meta: P,
}

/// Resolves keys and assigns canonical per-cycle ranks at a window
/// barrier, from the per-shard execution logs of that window.
#[derive(Debug)]
pub struct Merger<P> {
    logs: Vec<Vec<LogRec<P>>>,
    ranks: Vec<Vec<u64>>,
    done: Vec<usize>,
}

impl<P> Merger<P> {
    /// Builds a merger over one window's per-shard execution logs. Each
    /// log must be in execution order (cycles non-decreasing).
    pub fn new(logs: Vec<Vec<LogRec<P>>>) -> Self {
        let ranks = logs.iter().map(|l| vec![u64::MAX; l.len()]).collect();
        let done = vec![0; logs.len()];
        Merger { logs, ranks, done }
    }

    /// The log record a `Fresh` key points at.
    pub fn log(&self, shard: ShardId, xi: u32) -> &LogRec<P> {
        &self.logs[shard as usize][xi as usize]
    }

    /// Resolves `key` to its total-order form. A `Fresh` key requires its
    /// parent to have been ranked already (parents always execute, and
    /// therefore rank, before their children).
    ///
    /// # Panics
    ///
    /// Panics if a `Fresh` parent has not been ranked yet.
    pub fn resolve(&self, key: &EKey) -> Resolved {
        match *key {
            EKey::Fresh { shard, xi, idx } => {
                let pr = self.ranks[shard as usize][xi as usize];
                assert_ne!(pr, u64::MAX, "parent rank not assigned before child use");
                Resolved {
                    class: 1,
                    pc: self.logs[shard as usize][xi as usize].cycle,
                    pr,
                    idx: u64::from(idx),
                }
            }
            ref sealed => Resolved::of_sealed(sealed),
        }
    }

    /// Rewrites `key` into window-independent form: `Fresh` becomes
    /// `Sealed` via [`Merger::resolve`]; seeds and sealed keys pass
    /// through.
    pub fn seal(&self, key: &EKey) -> EKey {
        match *key {
            EKey::Fresh { shard, xi, idx } => EKey::Sealed {
                pc: self.logs[shard as usize][xi as usize].cycle,
                pr: self.ranks[shard as usize][xi as usize],
                idx,
            },
            sealed => sealed,
        }
    }

    /// Consumes the merger and returns the per-shard logs, letting the
    /// caller reclaim their allocations for the next window.
    pub fn into_logs(self) -> Vec<Vec<LogRec<P>>> {
        self.logs
    }

    /// Assigns canonical ranks to every logged event with cycle `< end`,
    /// cycle by cycle, and returns the merged global execution order as
    /// `(shard, log index)` pairs.
    pub fn rank_through(&mut self, end: Cycle) -> Vec<(ShardId, u32)> {
        let mut order = Vec::new();
        self.rank_into(end, &mut order);
        order
    }

    /// [`Merger::rank_through`] into a caller-owned buffer (appended, not
    /// cleared), so per-window callers can reuse one allocation.
    pub fn rank_into(&mut self, end: Cycle, order: &mut Vec<(ShardId, u32)>) {
        self.rank_impl::<true>(end, order);
    }

    /// Assigns ranks without materializing the merged order, for callers
    /// (the common case) with no order consumer — ranks alone are enough
    /// to seal every escaping key.
    pub fn rank_only(&mut self, end: Cycle) {
        let mut order = Vec::new();
        self.rank_impl::<false>(end, &mut order);
    }

    /// Within a cycle this is a k-way merge of the per-shard log segments
    /// by resolved key; ranks become visible to later resolutions as soon
    /// as they are assigned, which is what lets same-cycle zero-delay
    /// children (whose keys point at same-cycle parents) resolve. Cycles
    /// where only one shard executed skip key resolution entirely — the
    /// log order is already canonical there.
    fn rank_impl<const COLLECT: bool>(&mut self, end: Cycle, order: &mut Vec<(ShardId, u32)>) {
        // (shard, cached resolved head key) for the cycle being merged.
        let mut heads: Vec<(usize, Resolved)> = Vec::new();
        loop {
            // The next unranked cycle across all shards and how many
            // shards have entries at it, in one pass.
            let mut cycle = None;
            let mut live = 0usize;
            let mut only = 0usize;
            for (s, log) in self.logs.iter().enumerate() {
                let Some(rec) = log.get(self.done[s]) else {
                    continue;
                };
                match cycle {
                    Some(c) if rec.cycle > c => {}
                    Some(c) if rec.cycle == c => live += 1,
                    _ => {
                        cycle = Some(rec.cycle);
                        live = 1;
                        only = s;
                    }
                }
            }
            let Some(c) = cycle else { break };
            if c >= end {
                break;
            }
            if live == 1 {
                // Single-shard cycle: ranks are the log order.
                let s = only;
                let mut xi = self.done[s];
                let mut rank = 0u64;
                while self.logs[s].get(xi).is_some_and(|r| r.cycle == c) {
                    self.ranks[s][xi] = rank;
                    rank += 1;
                    if COLLECT {
                        order.push((s as ShardId, xi as u32));
                    }
                    xi += 1;
                }
                self.done[s] = xi;
                continue;
            }
            // Multi-shard cycle: tournament over cached resolved heads.
            // A loser's cached key stays valid — its parent's rank was
            // already assigned when the key was first resolved.
            heads.clear();
            for s in 0..self.logs.len() {
                if let Some(rec) = self.logs[s].get(self.done[s]) {
                    if rec.cycle == c {
                        heads.push((s, self.resolve(&rec.key)));
                    }
                }
            }
            let mut rank = 0u64;
            while !heads.is_empty() {
                let mut mi = 0;
                for (i, h) in heads.iter().enumerate().skip(1) {
                    if h.1 < heads[mi].1 {
                        mi = i;
                    }
                }
                let s = heads[mi].0;
                let xi = self.done[s];
                self.ranks[s][xi] = rank;
                rank += 1;
                self.done[s] = xi + 1;
                if COLLECT {
                    order.push((s as ShardId, xi as u32));
                }
                match self.logs[s].get(self.done[s]) {
                    Some(rec) if rec.cycle == c => heads[mi].1 = self.resolve(&rec.key),
                    _ => {
                        heads.swap_remove(mi);
                    }
                }
            }
        }
    }
}

/// A shard-local calendar of per-cycle FIFO buckets.
///
/// Buckets are append-only during window execution (appends provably
/// arrive in canonical key order; see the module docs); barrier-time
/// insertions go through [`ShardWheel::insert_with`], which places the
/// entry at its canonical position and enforces the lookahead floor.
///
/// Storage is a power-of-two calendar of cycle-tagged slots covering the
/// next `NEAR_SLOTS` cycles, with a `BTreeMap` overflow for entries
/// beyond the horizon; far buckets migrate into the calendar as `now`
/// advances. Scheduling and popping are O(1) on the calendar path.
/// `Fresh`-keyed appends are also recorded in a dirty list so that
/// [`ShardWheel::patch_keys`] touches exactly the entries scheduled
/// since the last barrier instead of walking every pending bucket.
#[derive(Debug)]
pub struct ShardWheel<E> {
    slots: Vec<Slot<E>>,
    near_count: usize,
    far: BTreeMap<Cycle, Vec<(EKey, E)>>,
    far_count: usize,
    now: Cycle,
    floor: Cycle,
    scheduled: u64,
    /// `(cycle, absolute bucket index)` of every pending `Fresh` entry
    /// appended since the last `patch_keys` call.
    fresh: Vec<(Cycle, usize)>,
}

/// Calendar horizon: cycles `[now, now + NEAR_SLOTS)` live in tagged
/// slots. Must exceed any window span (lookahead bound), including the
/// deliberately inflated bounds used by the adversarial tests.
const NEAR_SLOTS: usize = 4096;
const NEAR_MASK: usize = NEAR_SLOTS - 1;

/// One calendar slot. `popped` counts entries already consumed from the
/// front of this bucket, so dirty-list indices recorded at append time
/// (`popped + items.len()`) stay valid across same-window pops.
#[derive(Debug)]
struct Slot<E> {
    cycle: Cycle,
    popped: usize,
    items: VecDeque<(EKey, E)>,
}

impl<E> Default for ShardWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ShardWheel<E> {
    /// An empty wheel at cycle 0.
    pub fn new() -> Self {
        ShardWheel {
            slots: (0..NEAR_SLOTS)
                .map(|_| Slot {
                    cycle: 0,
                    popped: 0,
                    items: VecDeque::new(),
                })
                .collect(),
            near_count: 0,
            far: BTreeMap::new(),
            far_count: 0,
            now: 0,
            floor: 0,
            scheduled: 0,
            fresh: Vec::new(),
        }
    }

    /// Current cycle: the delivery time of the most recently popped entry.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total entries scheduled into this wheel over its lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.near_count + self.far_count
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The earliest pending cycle on the calendar path, if any. Scans
    /// slot tags forward from `now`; bounded by the calendar size and in
    /// practice by the gap to the next event.
    fn next_near(&self) -> Option<Cycle> {
        if self.near_count == 0 {
            return None;
        }
        let mut c = self.now;
        loop {
            let slot = &self.slots[(c as usize) & NEAR_MASK];
            if slot.cycle == c && !slot.items.is_empty() {
                return Some(c);
            }
            c += 1;
        }
    }

    /// The cycle of the earliest pending entry.
    pub fn next_time(&self) -> Option<Cycle> {
        let far = self.far.keys().next().copied();
        match (self.next_near(), far) {
            (Some(n), Some(f)) => Some(n.min(f)),
            (n, f) => n.or(f),
        }
    }

    /// The cycle and key of the entry the next `pop_window` call would
    /// return, without removing it.
    pub fn next_entry(&self) -> Option<(Cycle, EKey)> {
        let c = self.next_time()?;
        let slot = &self.slots[(c as usize) & NEAR_MASK];
        if slot.cycle == c {
            if let Some((key, _)) = slot.items.front() {
                return Some((c, *key));
            }
        }
        self.far
            .get(&c)
            .and_then(|b| b.first())
            .map(|(key, _)| (c, *key))
    }

    /// Raises the barrier floor: after a window ending at `floor`, no
    /// entry below it may ever be inserted.
    pub fn set_floor(&mut self, floor: Cycle) {
        self.floor = self.floor.max(floor);
    }

    /// The calendar slot for cycle `at`, retagged if it last served a
    /// (fully consumed) earlier cycle.
    fn slot_for(slots: &mut [Slot<E>], at: Cycle) -> &mut Slot<E> {
        let slot = &mut slots[(at as usize) & NEAR_MASK];
        if slot.cycle != at {
            debug_assert!(slot.items.is_empty(), "live slot retagged");
            slot.cycle = at;
            slot.popped = 0;
        }
        slot
    }

    /// Seeds an entry before the run under an `Init` key. Seeds must be
    /// fed in ascending `seq` order.
    pub fn seed(&mut self, at: Cycle, seq: u64, ev: E) {
        self.scheduled += 1;
        if at < self.now + NEAR_SLOTS as Cycle {
            let slot = Self::slot_for(&mut self.slots, at);
            slot.items.push_back((EKey::Init { seq }, ev));
            self.near_count += 1;
        } else {
            self.far
                .entry(at)
                .or_default()
                .push((EKey::Init { seq }, ev));
            self.far_count += 1;
        }
    }

    /// Schedules a shard-local entry under `key` during window execution.
    /// Same-cycle (zero-delay) schedules join the tail of the bucket
    /// currently being drained, exactly like the sequential queue's FIFO.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the wheel's past.
    pub fn schedule_keyed(&mut self, at: Cycle, key: EKey, ev: E) {
        assert!(
            at >= self.now,
            "scheduling at past cycle {at} (wheel now {})",
            self.now
        );
        self.scheduled += 1;
        let is_fresh = matches!(key, EKey::Fresh { .. });
        if at < self.now + NEAR_SLOTS as Cycle {
            let slot = Self::slot_for(&mut self.slots, at);
            if is_fresh {
                self.fresh.push((at, slot.popped + slot.items.len()));
            }
            slot.items.push_back((key, ev));
            self.near_count += 1;
        } else {
            let bucket = self.far.entry(at).or_default();
            if is_fresh {
                self.fresh.push((at, bucket.len()));
            }
            bucket.push((key, ev));
            self.far_count += 1;
        }
    }

    /// Inserts a sealed entry at its canonical position within the `at`
    /// bucket, comparing keys through `resolve`. This is the barrier-time
    /// path for cross-shard arrivals (message deliveries, wakeups).
    ///
    /// # Panics
    ///
    /// Panics with a *lookahead violation* if `at` is below the barrier
    /// floor — the shard may already have executed past it, so inserting
    /// would silently diverge from the sequential schedule.
    pub fn insert_with<R: Fn(&EKey) -> Resolved>(
        &mut self,
        at: Cycle,
        key: EKey,
        ev: E,
        resolve: R,
    ) {
        assert!(
            at >= self.floor,
            "lookahead violation: cross-shard arrival at cycle {at} is below \
             the window floor {} — the lookahead bound is unsound",
            self.floor
        );
        debug_assert!(
            !matches!(key, EKey::Fresh { .. }),
            "barrier insertions must carry sealed keys"
        );
        self.scheduled += 1;
        let rk = resolve(&key);
        if at < self.now + NEAR_SLOTS as Cycle {
            let slot = Self::slot_for(&mut self.slots, at);
            let pos = slot.items.partition_point(|(k, _)| resolve(k) <= rk);
            slot.items.insert(pos, (key, ev));
            self.near_count += 1;
        } else {
            let bucket = self.far.entry(at).or_default();
            let pos = bucket.partition_point(|(k, _)| resolve(k) <= rk);
            bucket.insert(pos, (key, ev));
            self.far_count += 1;
        }
    }

    /// Moves overflow buckets whose cycle has entered the calendar
    /// horizon into their slots. Called whenever `now` advances, which
    /// keeps the invariant that `far` never holds a cycle below
    /// `now + NEAR_SLOTS`.
    fn migrate(&mut self) {
        let horizon = self.now + NEAR_SLOTS as Cycle;
        while let Some((&c, _)) = self.far.first_key_value() {
            if c >= horizon {
                break;
            }
            let bucket = self.far.remove(&c).expect("far bucket");
            self.far_count -= bucket.len();
            self.near_count += bucket.len();
            let slot = &mut self.slots[(c as usize) & NEAR_MASK];
            debug_assert!(slot.items.is_empty(), "live slot retagged");
            slot.cycle = c;
            slot.popped = 0;
            slot.items = VecDeque::from(bucket);
        }
    }

    /// Pops the next entry strictly before `end`, in canonical order.
    /// Returns `None` when the window is exhausted.
    pub fn pop_window(&mut self, end: Cycle) -> Option<(Cycle, EKey, E)> {
        loop {
            let slot = &mut self.slots[(self.now as usize) & NEAR_MASK];
            if slot.cycle == self.now {
                if let Some((key, ev)) = slot.items.pop_front() {
                    slot.popped += 1;
                    self.near_count -= 1;
                    return Some((self.now, key, ev));
                }
            }
            let next = self.next_time()?;
            if next >= end {
                return None;
            }
            self.now = next;
            self.migrate();
        }
    }

    /// Entries still pending at cycle `c`, in canonical order.
    pub fn pending_at(&self, c: Cycle) -> impl Iterator<Item = &(EKey, E)> {
        let slot = &self.slots[(c as usize) & NEAR_MASK];
        let near = (slot.cycle == c).then(|| slot.items.iter());
        let far = self.far.get(&c).map(|b| b.iter());
        near.into_iter().flatten().chain(far.into_iter().flatten())
    }

    /// Rewrites every pending `Fresh` entry's key (window-barrier
    /// patching to `Sealed` form), using the dirty list recorded at
    /// append time. Entries consumed within the window are skipped; seeds
    /// and already-sealed entries were never recorded.
    pub fn patch_keys(&mut self, seal: impl Fn(&EKey) -> EKey) {
        let mut fresh = std::mem::take(&mut self.fresh);
        for (c, a) in fresh.drain(..) {
            let slot = &mut self.slots[(c as usize) & NEAR_MASK];
            if slot.cycle == c {
                if a >= slot.popped {
                    if let Some((key, _)) = slot.items.get_mut(a - slot.popped) {
                        *key = seal(key);
                    }
                }
            } else if let Some(bucket) = self.far.get_mut(&c) {
                if let Some((key, _)) = bucket.get_mut(a) {
                    *key = seal(key);
                }
            }
        }
        self.fresh = fresh;
    }
}

/// A bounded single-producer/single-consumer ring with blocking push and
/// pop, used both as the per-pair boundary buffer drained at window
/// barriers and as the coordinator↔worker hand-off channel.
///
/// The workspace forbids `unsafe`, so the ring is a mutex-protected deque
/// with a condvar rather than a lock-free buffer; exchanges happen once
/// per window barrier, far off the simulation hot path.
#[derive(Debug)]
pub struct Ring<T> {
    inner: Mutex<RingState<T>>,
    cv: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct RingState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Ring {
            inner: Mutex::new(RingState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Pushes an item, blocking while the ring is full.
    ///
    /// # Panics
    ///
    /// Panics if the ring is closed.
    pub fn push(&self, item: T) {
        let mut st = self.inner.lock().expect("ring lock");
        while st.items.len() >= self.capacity && !st.closed {
            st = self.cv.wait(st).expect("ring wait");
        }
        assert!(!st.closed, "push into a closed ring");
        st.items.push_back(item);
        self.cv.notify_all();
    }

    /// Pops an item, blocking while the ring is empty; `None` once the
    /// ring is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.inner.lock().expect("ring lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                self.cv.notify_all();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).expect("ring wait");
        }
    }

    /// Closes the ring, waking blocked consumers.
    pub fn close(&self) {
        self.inner.lock().expect("ring lock").closed = true;
        self.cv.notify_all();
    }
}

/// One emission from a handler in the generic engine: deliver `ev` to
/// shard `to` after `delay` cycles.
#[derive(Debug, Clone)]
pub struct Emission<E> {
    /// Destination shard.
    pub to: usize,
    /// Delivery delay in cycles (cross-shard emissions must respect the
    /// engine's lookahead).
    pub delay: Cycle,
    /// The event payload.
    pub ev: E,
}

#[derive(Debug)]
struct SendRec<E> {
    key: EKey,
    send_time: Cycle,
    to: usize,
    delay: Cycle,
    ev: E,
}

struct WindowTask<E> {
    shard: usize,
    wheel: ShardWheel<E>,
    end: Cycle,
}

struct WindowResult<E> {
    shard: usize,
    wheel: ShardWheel<E>,
    log: Vec<LogRec<E>>,
    sends: Vec<SendRec<E>>,
}

/// Runs a sharded model conservatively and returns the canonical global
/// execution order as `(cycle, shard, event)` — byte-comparable against
/// the same model driven through a sequential [`crate::EventQueue`].
///
/// `seeds` are the initial events in schedule order; `lookahead` must
/// lower-bound every cross-shard emission delay (violations panic at the
/// offending barrier rather than reorder); `threads <= 1` runs the same
/// windowed machinery inline.
///
/// # Panics
///
/// Panics on a lookahead violation: a cross-shard emission with
/// `delay < lookahead` that lands below a shard's window floor.
pub fn run_conservative<E, F>(
    seeds: Vec<(Cycle, usize, E)>,
    nshards: usize,
    lookahead: Cycle,
    threads: usize,
    handler: F,
) -> Vec<(Cycle, usize, E)>
where
    E: Send + Clone,
    F: Fn(usize, Cycle, &E, &mut Vec<Emission<E>>) + Sync,
{
    assert!(nshards > 0 && lookahead > 0);
    let mut wheels: Vec<Option<ShardWheel<E>>> =
        (0..nshards).map(|_| Some(ShardWheel::new())).collect();
    for (seq, (at, shard, ev)) in seeds.into_iter().enumerate() {
        wheels[shard]
            .as_mut()
            .expect("wheel present")
            .seed(at, seq as u64, ev);
    }

    let mut out = Vec::new();
    let workers = threads.clamp(1, nshards);
    // Coordinator → worker task rings (one per worker, SPSC) and the
    // shared worker → coordinator result ring. Declared before the scope
    // so the spawned workers' borrows outlive the scope body.
    let task_rings: Vec<Ring<WindowTask<E>>> =
        (0..workers).map(|_| Ring::new(nshards + 1)).collect();
    let results: Ring<WindowResult<E>> = Ring::new(nshards + 1);
    std::thread::scope(|scope| {
        // If the coordinator panics (e.g. a lookahead violation), close
        // the task rings on unwind so blocked workers exit instead of
        // deadlocking the scope join.
        struct CloseOnDrop<'a, T>(&'a [Ring<T>]);
        impl<T> Drop for CloseOnDrop<'_, T> {
            fn drop(&mut self) {
                for ring in self.0 {
                    ring.close();
                }
            }
        }
        let _close_guard = CloseOnDrop(&task_rings);
        if workers > 1 {
            for ring in &task_rings {
                let results = &results;
                let handler = &handler;
                scope.spawn(move || {
                    // Mirror-image guard: a panicking worker closes the
                    // result ring so the coordinator stops waiting on it.
                    let _close_guard = CloseOnDrop(std::slice::from_ref(results));
                    while let Some(task) = ring.pop() {
                        results.push(run_window(task, handler));
                    }
                });
            }
        }

        loop {
            let window = wheels
                .iter()
                .filter_map(|w| w.as_ref().expect("wheel home").next_time())
                .min();
            let Some(start) = window else { break };
            let end = start + lookahead;

            // Run every shard with work in this window.
            let mut busy = Vec::new();
            for shard in 0..nshards {
                let has_work = wheels[shard]
                    .as_ref()
                    .expect("wheel home")
                    .next_time()
                    .is_some_and(|t| t < end);
                if !has_work {
                    continue;
                }
                let task = WindowTask {
                    shard,
                    wheel: wheels[shard].take().expect("wheel home"),
                    end,
                };
                busy.push(shard);
                if workers > 1 {
                    task_rings[shard % workers].push(task);
                } else {
                    results.push(run_window(task, &handler));
                }
            }

            // Barrier: collect, rank, patch, deliver.
            let mut logs: Vec<Vec<LogRec<E>>> = (0..nshards).map(|_| Vec::new()).collect();
            let mut sends = Vec::new();
            for _ in 0..busy.len() {
                let res = results.pop().expect("worker result");
                logs[res.shard] = res.log;
                sends.extend(res.sends);
                wheels[res.shard] = Some(res.wheel);
            }
            let mut merger = Merger::new(logs);
            for (shard, xi) in merger.rank_through(end) {
                let rec = merger.log(shard, xi);
                out.push((rec.cycle, shard as usize, rec.meta.clone()));
            }
            for wheel in wheels.iter_mut() {
                let wheel = wheel.as_mut().expect("wheel home");
                wheel.patch_keys(|k| merger.seal(k));
                wheel.set_floor(end);
            }
            sends.sort_by_key(|s| merger.resolve(&s.key));
            for s in sends {
                let arrival = s.send_time + s.delay;
                wheels[s.to].as_mut().expect("wheel home").insert_with(
                    arrival,
                    merger.seal(&s.key),
                    s.ev,
                    |k| merger.resolve(k),
                );
            }
        }
        for ring in &task_rings {
            ring.close();
        }
    });
    out
}

fn run_window<E, F>(mut task: WindowTask<E>, handler: &F) -> WindowResult<E>
where
    E: Send + Clone,
    F: Fn(usize, Cycle, &E, &mut Vec<Emission<E>>) + Sync,
{
    let mut log: Vec<LogRec<E>> = Vec::new();
    let mut sends = Vec::new();
    let mut emissions = Vec::new();
    while let Some((t, key, ev)) = task.wheel.pop_window(task.end) {
        let xi = log.len() as u32;
        emissions.clear();
        handler(task.shard, t, &ev, &mut emissions);
        log.push(LogRec {
            cycle: t,
            key,
            meta: ev,
        });
        for (idx, em) in emissions.drain(..).enumerate() {
            let key = EKey::Fresh {
                shard: task.shard as ShardId,
                xi,
                idx: idx as u32,
            };
            if em.to == task.shard {
                task.wheel.schedule_keyed(t + em.delay, key, em.ev);
            } else {
                sends.push(SendRec {
                    key,
                    send_time: t,
                    to: em.to,
                    delay: em.delay,
                    ev: em.ev,
                });
            }
        }
    }
    WindowResult {
        shard: task.shard,
        wheel: task.wheel,
        log,
        sends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fifo_and_zero_delay_append() {
        let mut w: ShardWheel<u32> = ShardWheel::new();
        w.seed(5, 0, 10);
        w.seed(5, 1, 11);
        let (t, k, e) = w.pop_window(100).unwrap();
        assert_eq!((t, e), (5, 10));
        assert_eq!(k, EKey::Init { seq: 0 });
        // Zero-delay schedule joins the tail of the draining bucket.
        w.schedule_keyed(
            5,
            EKey::Fresh {
                shard: 0,
                xi: 0,
                idx: 0,
            },
            12,
        );
        assert_eq!(w.pop_window(100).unwrap().2, 11);
        assert_eq!(w.pop_window(100).unwrap().2, 12);
        assert!(w.pop_window(100).is_none());
        assert_eq!(w.total_scheduled(), 3);
    }

    #[test]
    fn wheel_window_edge_exclusive() {
        let mut w: ShardWheel<u32> = ShardWheel::new();
        w.seed(9, 0, 1);
        w.seed(10, 1, 2);
        assert_eq!(w.pop_window(10).unwrap().0, 9);
        assert!(w.pop_window(10).is_none(), "cycle 10 is outside [0, 10)");
        assert_eq!(w.next_time(), Some(10));
        assert_eq!(w.pop_window(11).unwrap().0, 10);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn insert_below_floor_panics() {
        let mut w: ShardWheel<u32> = ShardWheel::new();
        w.set_floor(26);
        w.insert_with(25, EKey::Init { seq: 0 }, 1, Resolved::of_sealed);
    }

    #[test]
    fn insert_positions_by_key() {
        let mut w: ShardWheel<u32> = ShardWheel::new();
        let k = |pc, pr, idx| EKey::Sealed { pc, pr, idx };
        w.insert_with(50, k(3, 0, 0), 30, Resolved::of_sealed);
        w.insert_with(50, k(1, 0, 0), 10, Resolved::of_sealed);
        w.insert_with(50, k(2, 5, 1), 20, Resolved::of_sealed);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop_window(100).map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn merger_ranks_same_cycle_across_shards() {
        // Shard 0 executed entries keyed (pc=0, pr=0, idx 0) and a fresh
        // child of its own first entry; shard 1 executed (pc=0, pr=1).
        let logs = vec![
            vec![
                LogRec {
                    cycle: 7,
                    key: EKey::Sealed {
                        pc: 0,
                        pr: 0,
                        idx: 0,
                    },
                    meta: "a",
                },
                LogRec {
                    cycle: 7,
                    key: EKey::Fresh {
                        shard: 0,
                        xi: 0,
                        idx: 0,
                    },
                    meta: "a-child",
                },
            ],
            vec![LogRec {
                cycle: 7,
                key: EKey::Sealed {
                    pc: 0,
                    pr: 1,
                    idx: 0,
                },
                meta: "b",
            }],
        ];
        let mut m = Merger::new(logs);
        let order: Vec<&str> = m
            .rank_through(100)
            .into_iter()
            .map(|(s, xi)| m.log(s, xi).meta)
            .collect();
        // a (pc 0, pr 0) < b (pc 0, pr 1) < a-child (pc 7 parent).
        assert_eq!(order, vec!["a", "b", "a-child"]);
        assert_eq!(
            m.seal(&EKey::Fresh {
                shard: 0,
                xi: 0,
                idx: 3
            }),
            EKey::Sealed {
                pc: 7,
                pr: 0,
                idx: 3
            }
        );
    }

    #[test]
    fn ring_is_fifo_and_close_drains() {
        let r: Ring<u32> = Ring::new(4);
        r.push(1);
        r.push(2);
        r.close();
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ring_blocks_across_threads() {
        let r: Ring<u32> = Ring::new(1);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..100 {
                    r.push(i);
                }
                r.close();
            });
            let mut got = Vec::new();
            while let Some(v) = r.pop() {
                got.push(v);
            }
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }
}
