//! The unified statistics spine.
//!
//! Every hardware model in the workspace (bus, memory banks, protocol
//! engines, network ports, …) keeps its own counters; [`Component`] is
//! the one interface through which the machine walks them. A component
//! answers two questions — "what have you counted?"
//! ([`Component::stats_snapshot`])
//! and "start counting afresh" ([`Component::reset_stats`]) — and a
//! composite component (a node, the whole machine) answers them by
//! aggregating its children into one [`ComponentStats`] tree.
//!
//! The walk is *observational*: taking a snapshot never mutates the
//! component, and resetting statistics never touches simulated state
//! (reservations, queue contents, busy times). That is what makes the
//! spine safe to thread through a calibrated simulator — reports are
//! derived from the same counters the components already keep, collected
//! in one canonical pass instead of ad-hoc per-field plumbing.

use crate::Cycle;

/// A named snapshot of one component's statistics, with child components
/// nested beneath it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComponentStats {
    /// Component name, unique among its siblings (e.g. `"bus"`).
    pub name: String,
    /// Monotonic event counts, e.g. `("transactions", 1024)`.
    pub counters: Vec<(&'static str, u64)>,
    /// Derived point-in-time values, e.g. `("mean_queue_delay", 3.5)`.
    pub gauges: Vec<(&'static str, f64)>,
    /// Sub-component snapshots.
    pub children: Vec<ComponentStats>,
}

impl ComponentStats {
    /// An empty snapshot named `name`.
    pub fn named(name: impl Into<String>) -> Self {
        ComponentStats {
            name: name.into(),
            ..ComponentStats::default()
        }
    }

    /// Adds a counter (builder style).
    #[must_use]
    pub fn counter(mut self, key: &'static str, value: u64) -> Self {
        self.counters.push((key, value));
        self
    }

    /// Adds a gauge (builder style).
    #[must_use]
    pub fn gauge(mut self, key: &'static str, value: f64) -> Self {
        self.gauges.push((key, value));
        self
    }

    /// Adds a child snapshot (builder style).
    #[must_use]
    pub fn child(mut self, child: ComponentStats) -> Self {
        self.children.push(child);
        self
    }

    /// The value of counter `key` on this node, if present.
    pub fn get_counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    /// Sums counter `key` over this node and every descendant.
    pub fn total(&self, key: &str) -> u64 {
        self.get_counter(key).unwrap_or(0) + self.children.iter().map(|c| c.total(key)).sum::<u64>()
    }

    /// The first descendant (depth-first, including `self`) named `name`.
    pub fn find(&self, name: &str) -> Option<&ComponentStats> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Renders the tree as indented `name: counter=value …` lines, one
    /// component per line — a debugging view, not a stable artifact
    /// format.
    pub fn render(&self) -> String {
        fn walk(node: &ComponentStats, depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            let _ = write!(out, "{:indent$}{}:", "", node.name, indent = depth * 2);
            for (k, v) in &node.counters {
                let _ = write!(out, " {k}={v}");
            }
            for (k, v) in &node.gauges {
                let _ = write!(out, " {k}={v:.3}");
            }
            out.push('\n');
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

/// A hardware model that participates in the statistics spine.
pub trait Component {
    /// The component's name within its parent (e.g. `"bus"`, `"net"`).
    fn component_name(&self) -> &'static str;

    /// A snapshot of the component's statistics, children included.
    fn stats_snapshot(&self) -> ComponentStats;

    /// Resets statistics without disturbing simulated state (pending
    /// reservations, queue contents, busy intervals all survive).
    fn reset_stats(&mut self);
}

impl Component for crate::Server {
    fn component_name(&self) -> &'static str {
        self.name()
    }

    fn stats_snapshot(&self) -> ComponentStats {
        ComponentStats::named(self.name())
            .counter("requests", self.requests())
            .counter("busy_cycles", self.busy_cycles())
            .gauge("mean_queue_delay", self.mean_queue_delay())
    }

    fn reset_stats(&mut self) {
        crate::Server::reset_stats(self);
    }
}

/// Convenience: utilization of a `busy_cycles` counter over `elapsed`.
pub fn utilization(busy: Cycle, elapsed: Cycle) -> f64 {
    if elapsed == 0 {
        0.0
    } else {
        busy as f64 / elapsed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Server;

    #[test]
    fn tree_totals_and_lookup() {
        let tree = ComponentStats::named("machine")
            .counter("events", 5)
            .child(ComponentStats::named("node0").counter("events", 2))
            .child(
                ComponentStats::named("node1")
                    .counter("events", 3)
                    .child(ComponentStats::named("bus").counter("events", 7)),
            );
        assert_eq!(tree.total("events"), 17);
        assert_eq!(tree.get_counter("events"), Some(5));
        assert_eq!(tree.find("bus").unwrap().total("events"), 7);
        assert!(tree.find("node2").is_none());
    }

    #[test]
    fn server_component_snapshot_and_reset() {
        let mut s = Server::new("bank");
        s.acquire(0, 10);
        let snap = s.stats_snapshot();
        assert_eq!(snap.name, "bank");
        assert_eq!(snap.get_counter("requests"), Some(1));
        assert_eq!(snap.get_counter("busy_cycles"), Some(10));
        Component::reset_stats(&mut s);
        assert_eq!(s.stats_snapshot().get_counter("requests"), Some(0));
        // Reservations survive the reset: the server is still busy.
        assert_eq!(s.next_free(), 10);
    }

    #[test]
    fn render_is_indented_by_depth() {
        let tree = ComponentStats::named("m")
            .child(ComponentStats::named("c").counter("x", 1).gauge("g", 0.5));
        let text = tree.render();
        assert!(text.contains("m:\n"));
        assert!(text.contains("  c: x=1 g=0.500"));
    }

    #[test]
    fn utilization_guards_zero_elapsed() {
        // An empty measured phase (elapsed == 0) must report 0, not NaN.
        assert_eq!(utilization(10, 0), 0.0);
        assert_eq!(utilization(0, 0), 0.0);
        assert!(utilization(u64::MAX, 0).is_finite());
        assert!((utilization(25, 100) - 0.25).abs() < 1e-12);
        assert_eq!(utilization(0, 100), 0.0);
    }

    /// A four-level tree exercising `total`, `find` and `render` past the
    /// two-level cases above (machine → node → component → sub-unit is
    /// the real spine's depth).
    fn deep_tree() -> ComponentStats {
        ComponentStats::named("machine")
            .counter("events", 1)
            .child(
                ComponentStats::named("node0")
                    .counter("events", 10)
                    .child(
                        ComponentStats::named("cc")
                            .counter("events", 100)
                            .gauge("util", 0.5)
                            .child(ComponentStats::named("engine0").counter("events", 1000))
                            .child(ComponentStats::named("engine1").counter("events", 2000)),
                    )
                    .child(ComponentStats::named("bus").counter("events", 7)),
            )
            .child(
                ComponentStats::named("node1")
                    .child(ComponentStats::named("cc").counter("events", 5)),
            )
    }

    #[test]
    fn total_sums_across_all_levels() {
        let tree = deep_tree();
        assert_eq!(tree.total("events"), 1 + 10 + 100 + 1000 + 2000 + 7 + 5);
        // A key missing everywhere sums to zero.
        assert_eq!(tree.total("absent"), 0);
        // Totals from an interior node cover only its subtree.
        assert_eq!(tree.find("node1").unwrap().total("events"), 5);
    }

    #[test]
    fn find_is_depth_first() {
        let tree = deep_tree();
        // Two components are named "cc"; depth-first search must return
        // node0's (the first subtree explored), not node1's.
        assert_eq!(tree.find("cc").unwrap().get_counter("events"), Some(100));
        // Leaves three levels down are reachable.
        assert_eq!(
            tree.find("engine1").unwrap().get_counter("events"),
            Some(2000)
        );
        assert!(tree.find("engine2").is_none());
    }

    #[test]
    fn render_indents_every_level() {
        let text = deep_tree().render();
        assert!(text.contains("machine: events=1\n"));
        assert!(text.contains("\n  node0: events=10\n"));
        assert!(text.contains("\n    cc: events=100 util=0.500\n"));
        assert!(text.contains("\n      engine0: events=1000\n"));
        // One line per component, no more.
        assert_eq!(text.lines().count(), 8);
    }
}
