//! Measured-phase allocation gate.
//!
//! The zero-alloc steady-state claim is enforced, not asserted: the
//! `repro` binary installs a counting global allocator, and this module
//! is the rendezvous between that allocator and the machine model. A
//! benchmark [`request`]s counting before starting a run; the machine
//! calls [`phase_start`] when it resets statistics at the start of the
//! measured phase and [`phase_end`] when the event loop drains, so the
//! window covers exactly the steady-state event processing — warm-up,
//! report assembly and artifact writing stay outside it.
//!
//! Everything is `Relaxed` atomics: the gate observes a single-threaded
//! benchmark loop, and the counters are diagnostics, not synchronization.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// A run has asked for the next measured phase to be counted.
static REQUESTED: AtomicBool = AtomicBool::new(false);
/// Counting is live (between `phase_start` and `phase_end`).
static ARMED: AtomicBool = AtomicBool::new(false);
/// Heap allocations observed while armed.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Bytes requested by those allocations.
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Arms the gate for the next measured phase: the first [`phase_start`]
/// after this call starts counting. Resets the counters.
pub fn request() {
    ALLOCS.store(0, Relaxed);
    BYTES.store(0, Relaxed);
    REQUESTED.store(true, Relaxed);
}

/// The measured phase began. Starts counting if a run [`request`]ed it;
/// otherwise a no-op, so simulations outside the gated benchmark never
/// pay for or reset the gate.
pub fn phase_start() {
    if REQUESTED.swap(false, Relaxed) {
        ALLOCS.store(0, Relaxed);
        BYTES.store(0, Relaxed);
        ARMED.store(true, Relaxed);
    }
}

/// The measured phase ended; stops counting. Idempotent.
pub fn phase_end() {
    ARMED.store(false, Relaxed);
}

/// Records one heap allocation of `bytes` bytes if the gate is armed.
/// Called by the counting global allocator on every `alloc`/`realloc`.
#[inline]
pub fn note(bytes: usize) {
    if ARMED.load(Relaxed) {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(bytes as u64, Relaxed);
    }
}

/// Whether the gate is currently counting. Lets the benchmark's
/// allocator offer extra diagnostics (e.g. backtraces) only while the
/// measured phase is live.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Relaxed)
}

/// `(allocations, bytes)` counted during the last armed phase.
pub fn counts() -> (u64, u64) {
    (ALLOCS.load(Relaxed), BYTES.load(Relaxed))
}

/// Cancels any pending request and stops counting (test hygiene).
pub fn reset() {
    REQUESTED.store(false, Relaxed);
    ARMED.store(false, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_only_between_phase_start_and_end() {
        reset();
        note(100); // not armed: ignored
        request();
        note(100); // requested but phase not started: ignored
        phase_start();
        note(8);
        note(16);
        phase_end();
        note(100); // after the phase: ignored
        assert_eq!(counts(), (2, 24));
        // A phase without a request counts nothing.
        phase_start();
        note(100);
        phase_end();
        assert_eq!(counts(), (2, 24));
        reset();
    }
}
