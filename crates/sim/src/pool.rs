//! Index-linked free-list arena for small transient FIFO lists.
//!
//! The machine model keeps many short-lived queues keyed by cache line:
//! requests buffered behind a busy directory entry, processors waiting on
//! an outstanding miss. Giving each entry its own `Vec`/`VecDeque` means
//! an allocation the first time any line goes busy — on the hottest edge
//! of the simulator — and a pointer-sized handle per entry.
//!
//! A [`ListPool`] stores every list node of one kind in a single slab and
//! links them by index. A list is a [`ListRef`] — two `u32` indices — so
//! per-entry state stays `Copy` and tiny, and pushing or popping in the
//! steady state recycles slab slots instead of touching the allocator.
//! The slab grows (amortized, like `Vec`) only when more nodes are live
//! at once than ever before; pre-size it with
//! [`with_capacity`](ListPool::with_capacity) from the system
//! configuration to make the steady state allocation-free.

/// Sentinel index marking the end of a chain.
const NIL: u32 = u32::MAX;

/// One slab slot: a value plus the index of the next node in its chain
/// (either a list chain or the free chain).
#[derive(Debug, Clone)]
struct Slot<T> {
    value: T,
    next: u32,
}

/// A FIFO list handle into a [`ListPool`]: head and tail slot indices.
///
/// The default value is the empty list. Handles are plain data; all
/// operations go through the owning pool. Dropping a non-empty handle
/// without [`ListPool::clear`] leaks its slots until the pool is dropped
/// (they are not reclaimed, but nothing dangles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListRef {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for ListRef {
    fn default() -> Self {
        ListRef {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

impl ListRef {
    /// Number of values in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A slab of index-linked list nodes with an intrusive free list.
///
/// # Example
///
/// ```
/// use ccn_sim::pool::{ListPool, ListRef};
///
/// let mut pool: ListPool<u64> = ListPool::with_capacity(4);
/// let mut list = ListRef::default();
/// pool.push_back(&mut list, 10);
/// pool.push_back(&mut list, 20);
/// assert_eq!(pool.iter(&list).copied().collect::<Vec<_>>(), vec![10, 20]);
/// assert_eq!(pool.pop_front(&mut list), Some(10));
/// assert_eq!(pool.pop_front(&mut list), Some(20));
/// assert_eq!(pool.pop_front(&mut list), None);
/// ```
#[derive(Debug, Clone)]
pub struct ListPool<T> {
    slots: Vec<Slot<T>>,
    /// Head of the free chain (`NIL` when every slot is live).
    free: u32,
}

impl<T: Copy + Default> Default for ListPool<T> {
    fn default() -> Self {
        ListPool::with_capacity(0)
    }
}

impl<T: Copy + Default> ListPool<T> {
    /// A pool with `capacity` slots pre-allocated on the free chain.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut pool = ListPool {
            slots: Vec::new(),
            free: NIL,
        };
        pool.reserve(capacity);
        pool
    }

    /// Ensures at least `capacity` total slots exist, linking any new
    /// ones into the free chain.
    pub fn reserve(&mut self, capacity: usize) {
        assert!(capacity < NIL as usize, "pool capacity exceeds u32 indices");
        self.slots
            .reserve(capacity.saturating_sub(self.slots.len()));
        while self.slots.len() < capacity {
            let idx = self.slots.len() as u32;
            // Slot values on the free chain are dead; any value works.
            self.slots.push(Slot {
                value: T::default(),
                next: self.free,
            });
            self.free = idx;
        }
    }
}

impl<T: Copy> ListPool<T> {
    /// Takes a slot off the free chain, growing the slab if none is left.
    fn alloc(&mut self, value: T) -> u32 {
        if self.free == NIL {
            let idx = self.slots.len();
            assert!(idx < NIL as usize, "pool exhausted u32 indices");
            self.slots.push(Slot { value, next: NIL });
            return idx as u32;
        }
        let idx = self.free;
        let slot = &mut self.slots[idx as usize];
        self.free = slot.next;
        slot.value = value;
        slot.next = NIL;
        idx
    }

    /// Appends `value` to `list`.
    pub fn push_back(&mut self, list: &mut ListRef, value: T) {
        let idx = self.alloc(value);
        if list.tail == NIL {
            list.head = idx;
        } else {
            self.slots[list.tail as usize].next = idx;
        }
        list.tail = idx;
        list.len += 1;
    }

    /// Removes and returns the front of `list`, recycling its slot.
    pub fn pop_front(&mut self, list: &mut ListRef) -> Option<T> {
        if list.head == NIL {
            return None;
        }
        let idx = list.head;
        let slot = &mut self.slots[idx as usize];
        let value = slot.value;
        list.head = slot.next;
        slot.next = self.free;
        self.free = idx;
        if list.head == NIL {
            list.tail = NIL;
        }
        list.len -= 1;
        Some(value)
    }

    /// Empties `list`, recycling every slot.
    pub fn clear(&mut self, list: &mut ListRef) {
        while self.pop_front(list).is_some() {}
    }

    /// Iterates over `list` front to back.
    pub fn iter<'a>(&'a self, list: &ListRef) -> ListIter<'a, T> {
        ListIter {
            pool: self,
            next: list.head,
            left: list.len as usize,
        }
    }

    /// Total slots in the slab (live plus free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Front-to-back iterator over one list in a [`ListPool`].
#[derive(Debug)]
pub struct ListIter<'a, T> {
    pool: &'a ListPool<T>,
    next: u32,
    left: usize,
}

impl<'a, T> Iterator for ListIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.next == NIL {
            return None;
        }
        let slot = &self.pool.slots[self.next as usize];
        self.next = slot.next;
        self.left -= 1;
        Some(&slot.value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.left, Some(self.left))
    }
}

impl<T> ExactSizeIterator for ListIter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut pool: ListPool<u32> = ListPool::with_capacity(8);
        let mut list = ListRef::default();
        for v in 0..5 {
            pool.push_back(&mut list, v);
        }
        assert_eq!(list.len(), 5);
        for v in 0..5 {
            assert_eq!(pool.pop_front(&mut list), Some(v));
        }
        assert!(list.is_empty());
        assert_eq!(pool.pop_front(&mut list), None);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut pool: ListPool<u64> = ListPool::default();
        let mut list = ListRef::default();
        // Warm the slab to its high-water mark.
        for v in 0..16 {
            pool.push_back(&mut list, v);
        }
        pool.clear(&mut list);
        let cap = pool.capacity();
        // Steady-state churn at or below the mark must not grow the slab.
        for round in 0..100u64 {
            for v in 0..16 {
                pool.push_back(&mut list, round * 100 + v);
            }
            for v in 0..16 {
                assert_eq!(pool.pop_front(&mut list), Some(round * 100 + v));
            }
        }
        assert_eq!(pool.capacity(), cap, "churn must recycle, not grow");
    }

    #[test]
    fn independent_lists_share_one_slab() {
        let mut pool: ListPool<u32> = ListPool::default();
        let mut a = ListRef::default();
        let mut b = ListRef::default();
        for v in 0..4 {
            pool.push_back(&mut a, v);
            pool.push_back(&mut b, 100 + v);
        }
        assert_eq!(pool.iter(&a).copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(
            pool.iter(&b).copied().collect::<Vec<_>>(),
            vec![100, 101, 102, 103]
        );
        assert_eq!(pool.pop_front(&mut a), Some(0));
        assert_eq!(pool.pop_front(&mut b), Some(100));
        assert_eq!(pool.iter(&a).len(), 3);
        assert_eq!(pool.iter(&b).len(), 3);
    }

    #[test]
    fn interleaved_push_pop_keeps_chains_separate() {
        let mut pool: ListPool<u32> = ListPool::with_capacity(2);
        let mut a = ListRef::default();
        let mut b = ListRef::default();
        pool.push_back(&mut a, 1);
        pool.push_back(&mut b, 2);
        assert_eq!(pool.pop_front(&mut a), Some(1));
        pool.push_back(&mut b, 3); // reuses a's freed slot
        pool.push_back(&mut a, 4);
        assert_eq!(pool.iter(&b).copied().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(pool.iter(&a).copied().collect::<Vec<_>>(), vec![4]);
    }
}
