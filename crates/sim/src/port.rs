//! Typed message endpoints over the event queue.
//!
//! Components of the simulated machine do not call into each other
//! directly; they hand messages to a [`Port`], which stamps the message
//! into the shared calendar [`EventQueue`](crate::EventQueue) at the
//! requested cycle. A port is a *pure wrapper*: it injects exactly one
//! event per send, at exactly the requested time, so two models that
//! differ only in whether they go through ports are cycle-identical —
//! including the FIFO tie-break among events scheduled for the same
//! cycle, which follows the order of `send` calls.

use crate::{Cycle, ScheduleSink};

/// A typed endpoint that delivers messages of type `M` as events of the
/// queue's type `E`.
///
/// The wrapping function is a plain `fn` pointer so ports are `Copy`,
/// const-constructible, and free of per-send allocation; a port is one
/// static description of "how an `M` enters the event system".
///
/// # Example
///
/// ```
/// use ccn_sim::{EventQueue, Port};
///
/// #[derive(Debug, PartialEq)]
/// enum Event {
///     Tick(u32),
/// }
///
/// const TICKS: Port<u32, Event> = Port::new("clock.tick", Event::Tick);
///
/// let mut queue = EventQueue::new();
/// TICKS.send(&mut queue, 5, 42);
/// assert_eq!(queue.pop(), Some((5, Event::Tick(42))));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Port<M, E> {
    name: &'static str,
    wrap: fn(M) -> E,
}

impl<M, E> Port<M, E> {
    /// Creates a port that wraps messages with `wrap`.
    pub const fn new(name: &'static str, wrap: fn(M) -> E) -> Self {
        Port { name, wrap }
    }

    /// The port's diagnostic name (e.g. `"node.cc.work"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Delivers `message` at cycle `at` by scheduling its wrapped event
    /// into any [`ScheduleSink`] — the sequential [`EventQueue`](crate::EventQueue)
    /// (crate::EventQueue) or a parallel shard wheel.
    #[inline]
    pub fn send<S: ScheduleSink<E>>(&self, queue: &mut S, at: Cycle, message: M) {
        queue.schedule(at, (self.wrap)(message));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    #[derive(Debug, PartialEq, Eq)]
    enum Ev {
        A(u64),
        B(u64),
    }

    const A: Port<u64, Ev> = Port::new("a", Ev::A);
    const B: Port<u64, Ev> = Port::new("b", Ev::B);

    #[test]
    fn sends_preserve_fifo_order_at_equal_times() {
        let mut q = EventQueue::new();
        A.send(&mut q, 10, 1);
        B.send(&mut q, 10, 2);
        A.send(&mut q, 10, 3);
        assert_eq!(q.pop(), Some((10, Ev::A(1))));
        assert_eq!(q.pop(), Some((10, Ev::B(2))));
        assert_eq!(q.pop(), Some((10, Ev::A(3))));
    }

    #[test]
    fn port_is_copy_and_named() {
        let a2 = A;
        assert_eq!(a2.name(), "a");
        let mut q = EventQueue::new();
        a2.send(&mut q, 0, 7);
        assert_eq!(q.len(), 1);
    }
}
