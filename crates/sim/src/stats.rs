//! Statistics primitives: counters and running means.
//!
//! These are deliberately simple — everything the paper reports is a count,
//! a mean, a ratio, or a rate — but they are used pervasively, so they live
//! here rather than being re-invented per crate.

use std::fmt;

/// A running mean/min/max accumulator over `f64` samples.
///
/// ```
/// let mut acc = ccn_sim::stats::Accumulator::new();
/// acc.record(2.0);
/// acc.record(4.0);
/// assert_eq!(acc.mean(), 3.0);
/// assert_eq!(acc.count(), 2);
/// assert_eq!(acc.min(), Some(2.0));
/// assert_eq!(acc.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.sum_sq += sample * sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance of the samples (0 if fewer than two).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ): 1 for a Poisson arrival process,
    /// larger for bursty ones. 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let mean = self.mean();
        if mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / mean
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.3}", self.count, self.mean())
    }
}

/// Rate helper: events per microsecond given a count and an elapsed time in
/// CPU cycles (5 ns), as used for the "arrival rate of requests per µs"
/// columns of Table 6.
///
/// ```
/// // 1000 requests over 200_000 cycles (1 ms) = 1 request/µs
/// assert!((ccn_sim::stats::rate_per_us(1000, 200_000) - 1.0).abs() < 1e-12);
/// ```
pub fn rate_per_us(count: u64, elapsed_cycles: u64) -> f64 {
    if elapsed_cycles == 0 {
        return 0.0;
    }
    let us = elapsed_cycles as f64 * crate::NS_PER_CPU_CYCLE / 1000.0;
    count as f64 / us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_empty() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.record(1.0);
        let mut b = Accumulator::new();
        b.record(3.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(5.0));
    }

    #[test]
    fn variance_and_cv() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.record(x);
        }
        assert!((a.variance() - 4.0).abs() < 1e-9);
        assert!((a.std_dev() - 2.0).abs() < 1e-9);
        assert!((a.cv() - 0.4).abs() < 1e-9);
        let empty = Accumulator::new();
        assert_eq!(empty.variance(), 0.0);
        assert_eq!(empty.cv(), 0.0);
    }

    #[test]
    fn rate_helper() {
        assert_eq!(rate_per_us(100, 0), 0.0);
        // 200 cycles = 1 µs
        assert!((rate_per_us(5, 200) - 5.0).abs() < 1e-12);
    }
}
