//! Statistics primitives: counters and running means.
//!
//! These are deliberately simple — everything the paper reports is a count,
//! a mean, a ratio, or a rate — but they are used pervasively, so they live
//! here rather than being re-invented per crate.

use std::fmt;

/// A running mean/min/max accumulator over `f64` samples.
///
/// ```
/// let mut acc = ccn_sim::stats::Accumulator::new();
/// acc.record(2.0);
/// acc.record(4.0);
/// assert_eq!(acc.mean(), 3.0);
/// assert_eq!(acc.count(), 2);
/// assert_eq!(acc.min(), Some(2.0));
/// assert_eq!(acc.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.sum_sq += sample * sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance of the samples (0 if fewer than two).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ): 1 for a Poisson arrival process,
    /// larger for bursty ones. 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let mean = self.mean();
        if mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / mean
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.3}", self.count, self.mean())
    }
}

/// Number of buckets in a [`Histogram`]: one for zero plus one per power
/// of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A streaming log2-bucketed histogram of `u64` samples (latencies in
/// cycles, queue depths, …).
///
/// Bucket 0 counts zeros; bucket `i` (1..=64) counts samples in
/// `[2^(i-1), 2^i)`. Count, sum, min and max are tracked exactly, so the
/// mean and max reported from a histogram are bit-identical to what an
/// [`Accumulator`] fed the same integer samples would report (integer
/// sums stay exact in `f64` below 2^53). Quantiles interpolate within the
/// containing bucket and are clamped to the observed `[min, max]`, which
/// makes them deterministic and merge-stable: merging per-shard
/// histograms then asking for p99 gives the same answer as one histogram
/// fed every sample.
///
/// ```
/// let mut h = ccn_sim::stats::Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(100));
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((1.0..=4.0).contains(&p50));
/// assert_eq!(ccn_sim::stats::Histogram::new().quantile(0.5), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index holding `value`: 0 for 0, else `64 - leading_zeros`.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The half-open sample range `[lo, hi)` covered by bucket `index`
/// (saturating at `u64::MAX` for the top bucket).
pub fn bucket_range(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 1),
        64 => (1u64 << 63, u64::MAX),
        i => (1u64 << (i - 1), 1u64 << i),
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw bucket counts (index `i` covers [`bucket_range`]`(i)`).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs, ascending —
    /// the compact form used when serializing a histogram.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Restores a histogram from its serialized parts (the inverse of
    /// [`nonzero_buckets`](Histogram::nonzero_buckets) plus the exact
    /// aggregates). Used by sidecar readers; bucket indexes past the last
    /// bucket are ignored.
    pub fn from_parts(buckets: &[(usize, u64)], sum: u128, min: u64, max: u64) -> Self {
        let mut h = Histogram::new();
        for &(i, c) in buckets {
            if i < HISTOGRAM_BUCKETS {
                h.buckets[i] = c;
                h.count += c;
            }
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        h
    }

    /// The quantile `q` (in `[0, 1]`) estimated by linear interpolation
    /// within the containing log2 bucket, clamped to the observed
    /// `[min, max]`. Returns `None` when the histogram is empty — an
    /// empty distribution has no quantiles, and a silent `0.0` reads as
    /// a real (excellent) latency. Deterministic: depends only on bucket
    /// counts and the exact min/max, both of which merge losslessly.
    ///
    /// The interpolation range of the containing bucket is intersected
    /// with `[min, max]` before interpolating, so a distribution whose
    /// samples all land in one bucket stays pinned inside the observed
    /// range instead of sweeping the bucket's full power-of-two span.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The 1-based rank of the sample we want.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_range(i);
                // Interpolate within the part of the bucket that was
                // actually observed.
                let lo = lo.max(self.min) as f64;
                let hi = hi.min(self.max) as f64;
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + frac * (hi - lo).max(0.0);
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            seen += c;
        }
        Some(self.max as f64)
    }

    /// Merges another histogram into this one. Deterministic: bucket
    /// counts, count, sum, min and max all combine exactly, so merge
    /// order never matters.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={:.0} p90={:.0} p99={:.0} max={}",
            self.count,
            self.mean(),
            self.quantile(0.50).unwrap_or(0.0),
            self.quantile(0.90).unwrap_or(0.0),
            self.quantile(0.99).unwrap_or(0.0),
            self.max
        )
    }
}

/// Rate helper: events per microsecond given a count and an elapsed time in
/// CPU cycles (5 ns), as used for the "arrival rate of requests per µs"
/// columns of Table 6.
///
/// ```
/// // 1000 requests over 200_000 cycles (1 ms) = 1 request/µs
/// assert!((ccn_sim::stats::rate_per_us(1000, 200_000) - 1.0).abs() < 1e-12);
/// ```
pub fn rate_per_us(count: u64, elapsed_cycles: u64) -> f64 {
    if elapsed_cycles == 0 {
        return 0.0;
    }
    let us = elapsed_cycles as f64 * crate::NS_PER_CPU_CYCLE / 1000.0;
    count as f64 / us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_empty() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.record(1.0);
        let mut b = Accumulator::new();
        b.record(3.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(5.0));
    }

    #[test]
    fn variance_and_cv() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.record(x);
        }
        assert!((a.variance() - 4.0).abs() < 1e-9);
        assert!((a.std_dev() - 2.0).abs() < 1e-9);
        assert!((a.cv() - 0.4).abs() < 1e-9);
        let empty = Accumulator::new();
        assert_eq!(empty.variance(), 0.0);
        assert_eq!(empty.cv(), 0.0);
    }

    #[test]
    fn rate_helper() {
        assert_eq!(rate_per_us(100, 0), 0.0);
        // 200 cycles = 1 µs
        assert!((rate_per_us(5, 200) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn histogram_one_bucket_quantiles_stay_in_observed_range() {
        // All samples in bucket 7 ([64, 128)); the observed range is
        // [70, 100], and every quantile must stay inside it — not sweep
        // the bucket's full power-of-two span.
        let mut h = Histogram::new();
        for v in [70u64, 80, 90, 100] {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!(
                (70.0..=100.0).contains(&est),
                "q={q}: {est} escaped the observed range"
            );
        }
        assert_eq!(h.quantile(1.0), Some(100.0));
        // A single-sample histogram pins every quantile to the sample.
        let mut one = Histogram::new();
        one.record(77);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(one.quantile(q), Some(77.0));
        }
    }

    #[test]
    fn histogram_merge_of_empty_is_identity() {
        let mut h = Histogram::new();
        for v in [3u64, 9, 200] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        // And merging into an empty histogram copies the other side.
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
        // Empty-into-empty stays empty (quantiles have no value).
        let mut e2 = Histogram::new();
        e2.merge(&Histogram::new());
        assert_eq!(e2.count(), 0);
        assert_eq!(e2.quantile(0.99), None);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // 0
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[3], 2); // 4, 7
        assert_eq!(buckets[4], 1); // 8..16
        assert_eq!(buckets[64], 1); // top bucket
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn histogram_mean_matches_accumulator_exactly() {
        // The report pipeline replaced an f64 Accumulator with the
        // histogram; integer samples must produce bit-identical means.
        let samples = [3u64, 17, 1000, 250_000, 0, 42, 42, 99_999_999];
        let mut h = Histogram::new();
        let mut a = Accumulator::new();
        for &v in &samples {
            h.record(v);
            a.record(v as f64);
        }
        assert_eq!(h.mean().to_bits(), a.mean().to_bits());
        assert_eq!(
            (h.max().unwrap() as f64).to_bits(),
            a.max().unwrap().to_bits()
        );
    }

    #[test]
    fn histogram_quantiles_clamped_and_ordered() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p90 = h.quantile(0.90).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max().unwrap() as f64);
        assert!(h.quantile(0.0).unwrap() >= h.min().unwrap() as f64);
        assert_eq!(h.quantile(1.0), Some(1000.0));
        // A single-valued distribution pins every quantile to that value.
        let mut one = Histogram::new();
        one.record(77);
        one.record(77);
        assert_eq!(one.quantile(0.5), Some(77.0));
        assert_eq!(one.quantile(0.99), Some(77.0));
    }

    #[test]
    fn histogram_merge_is_lossless_and_order_independent() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100u64 {
            all.record(v * v);
            if v % 2 == 0 {
                a.record(v * v);
            } else {
                b.record(v * v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
        assert_eq!(ab.quantile(0.9), all.quantile(0.9));
        assert!(ab.quantile(0.9).is_some());
    }

    #[test]
    fn histogram_round_trips_through_parts() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 80, 1 << 40] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(
            &h.nonzero_buckets(),
            h.sum(),
            h.min().unwrap(),
            h.max().unwrap(),
        );
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn bucket_ranges_partition_the_domain() {
        assert_eq!(bucket_range(0), (0, 1));
        assert_eq!(bucket_range(1), (1, 2));
        assert_eq!(bucket_range(5), (16, 32));
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_range(i).1, bucket_range(i + 1).0);
        }
    }
}
