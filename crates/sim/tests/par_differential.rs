//! Differential tests for the conservative parallel engine
//! (`ccn_sim::par`) against the sequential calendar [`EventQueue`].
//!
//! The same randomized branching workload is driven through both
//! engines and the *complete delivered order* — `(cycle, shard, event)`
//! triple by triple — must match, including the FIFO tie-break among
//! same-cycle events whose parents executed on different shards. The
//! adversarial cases pin the boundary semantics: emissions landing
//! exactly on the window edge, zero-delay self-send chains, and a
//! mutation test that shrinks the lookahead below the model's actual
//! cross-shard delay and expects the safety panic, not a reordering.

use ccn_sim::par::{run_conservative, Emission};
use ccn_sim::{Cycle, EventQueue, SplitMix64};

/// Cross-shard emissions are delayed by at least this many cycles.
const LOOKAHEAD: Cycle = 7;

/// An event: the high byte is the remaining branching depth, the rest is
/// a seed for the deterministic emission pattern.
type Ev = u64;

fn ev(depth: u64, seed: u64) -> Ev {
    (depth << 56) | (seed & ((1 << 56) - 1))
}

/// Deterministic handler: branch into up to three children with
/// payload-derived targets and delays. `min_cross` is the smallest delay
/// used for a cross-shard emission — the honest model uses `LOOKAHEAD`,
/// the mutation test lies.
fn branch(
    shard: usize,
    payload: Ev,
    nshards: usize,
    min_cross: Cycle,
    out: &mut Vec<Emission<Ev>>,
) {
    let depth = payload >> 56;
    if depth == 0 {
        return;
    }
    let mut rng = SplitMix64::new(payload);
    let kids = rng.next_below(4);
    for _ in 0..kids {
        let to = rng.next_below(nshards as u64) as usize;
        // Small delay ranges create heavy same-cycle collisions both
        // within a shard and across the boundary.
        let delay = if to == shard {
            rng.next_below(4)
        } else {
            min_cross + rng.next_below(3)
        };
        out.push(Emission {
            to,
            delay,
            ev: ev(depth - 1, rng.next_u64()),
        });
    }
}

/// The obviously-correct reference: one sequential calendar queue over
/// `(shard, event)` pairs, popped to completion.
fn run_sequential(
    seeds: &[(Cycle, usize, Ev)],
    nshards: usize,
    min_cross: Cycle,
) -> Vec<(Cycle, usize, Ev)> {
    let mut queue: EventQueue<(usize, Ev)> = EventQueue::new();
    for &(at, shard, payload) in seeds {
        queue.schedule(at, (shard, payload));
    }
    let mut out = Vec::new();
    let mut emissions = Vec::new();
    while let Some((t, (shard, payload))) = queue.pop() {
        out.push((t, shard, payload));
        emissions.clear();
        branch(shard, payload, nshards, min_cross, &mut emissions);
        for em in emissions.drain(..) {
            queue.schedule(t + em.delay, (em.to, em.ev));
        }
    }
    out
}

fn make_seeds(rng: &mut SplitMix64, nshards: usize, count: usize) -> Vec<(Cycle, usize, Ev)> {
    (0..count)
        .map(|_| {
            let at = rng.next_below(20);
            let shard = rng.next_below(nshards as u64) as usize;
            let depth = 2 + rng.next_below(4);
            (at, shard, ev(depth, rng.next_u64()))
        })
        .collect()
}

fn differential_case(seed: u64, nshards: usize, threads: usize) {
    let mut rng = SplitMix64::new(seed);
    let seeds = make_seeds(&mut rng, nshards, 40);
    let expected = run_sequential(&seeds, nshards, LOOKAHEAD);
    let got = run_conservative(seeds, nshards, LOOKAHEAD, threads, |s, _, e, out| {
        branch(s, *e, nshards, LOOKAHEAD, out)
    });
    assert_eq!(
        got, expected,
        "parallel pop order diverged (seed {seed}, {nshards} shards, {threads} threads)"
    );
    assert!(!expected.is_empty());
}

#[test]
fn randomized_merge_matches_sequential_pop_order() {
    for seed in 0..12 {
        for nshards in [1, 2, 3, 4] {
            for threads in [1, 2, 4] {
                differential_case(0xC0FFEE ^ seed, nshards, threads);
            }
        }
    }
}

#[test]
fn window_edge_emissions_match_sequential() {
    // Every cross-shard emission lands exactly `LOOKAHEAD` after its
    // parent — i.e. exactly on the next window's opening edge when the
    // parent ran at the window start. The edge cycle must execute in the
    // *next* window, in canonical order.
    let nshards = 3;
    let seeds: Vec<(Cycle, usize, Ev)> = (0..nshards)
        .map(|s| (0, s, ev(5, 0x9E3779B9 + s as u64)))
        .collect();
    let edge = |shard: usize, payload: Ev, out: &mut Vec<Emission<Ev>>| {
        let depth = payload >> 56;
        if depth == 0 {
            return;
        }
        let mut rng = SplitMix64::new(payload);
        for _ in 0..2 {
            let to = rng.next_below(nshards as u64) as usize;
            let delay = if to == shard { 0 } else { LOOKAHEAD };
            out.push(Emission {
                to,
                delay,
                ev: ev(depth - 1, rng.next_u64()),
            });
        }
    };
    let mut queue: EventQueue<(usize, Ev)> = EventQueue::new();
    for &(at, shard, payload) in &seeds {
        queue.schedule(at, (shard, payload));
    }
    let mut expected = Vec::new();
    let mut emissions = Vec::new();
    while let Some((t, (shard, payload))) = queue.pop() {
        expected.push((t, shard, payload));
        emissions.clear();
        edge(shard, payload, &mut emissions);
        for em in emissions.drain(..) {
            queue.schedule(t + em.delay, (em.to, em.ev));
        }
    }
    for threads in [1, 2] {
        let got = run_conservative(
            seeds.clone(),
            nshards,
            LOOKAHEAD,
            threads,
            |s, _, e, out| edge(s, *e, out),
        );
        assert_eq!(got, expected);
    }
}

#[test]
fn zero_delay_self_send_chains_match_sequential() {
    // Chains of zero-delay self-sends: each event spawns a same-cycle
    // child on its own shard plus a cross-shard cousin, so a single cycle
    // hosts a long FIFO run that the draining bucket must preserve while
    // barrier-inserted arrivals interleave at the same cycle later.
    let nshards = 2;
    let seeds = vec![(0, 0, ev(6, 1)), (0, 1, ev(6, 2)), (LOOKAHEAD, 0, ev(6, 3))];
    let chain = |shard: usize, payload: Ev, out: &mut Vec<Emission<Ev>>| {
        let depth = payload >> 56;
        if depth == 0 {
            return;
        }
        let mut rng = SplitMix64::new(payload);
        out.push(Emission {
            to: shard,
            delay: 0,
            ev: ev(depth - 1, rng.next_u64()),
        });
        if rng.chance(0.7) {
            out.push(Emission {
                to: 1 - shard,
                delay: LOOKAHEAD,
                ev: ev(depth - 1, rng.next_u64()),
            });
        }
    };
    let mut queue: EventQueue<(usize, Ev)> = EventQueue::new();
    for &(at, shard, payload) in &seeds {
        queue.schedule(at, (shard, payload));
    }
    let mut expected = Vec::new();
    let mut emissions = Vec::new();
    while let Some((t, (shard, payload))) = queue.pop() {
        expected.push((t, shard, payload));
        emissions.clear();
        chain(shard, payload, &mut emissions);
        for em in emissions.drain(..) {
            queue.schedule(t + em.delay, (em.to, em.ev));
        }
    }
    for threads in [1, 2] {
        let got = run_conservative(
            seeds.clone(),
            nshards,
            LOOKAHEAD,
            threads,
            |s, _, e, out| chain(s, *e, out),
        );
        assert_eq!(got, expected);
    }
}

#[test]
#[should_panic(expected = "lookahead violation")]
fn shrunken_lookahead_panics_instead_of_reordering() {
    // Mutation test: the model actually sends cross-shard traffic with
    // delay `LOOKAHEAD - 1`, but the engine is promised `LOOKAHEAD`. The
    // safety check at the barrier must panic — silently delivering the
    // message would reorder it behind events the target shard already
    // executed.
    let mut rng = SplitMix64::new(42);
    let seeds = make_seeds(&mut rng, 2, 20);
    run_conservative(seeds, 2, LOOKAHEAD, 1, |s, _, e, out| {
        branch(s, *e, 2, LOOKAHEAD - 1, out)
    });
}

#[test]
fn threaded_engine_matches_inline_engine() {
    // The worker-pool path and the inline path must produce identical
    // output (they share every data structure; this pins the hand-off).
    let mut rng = SplitMix64::new(7);
    let seeds = make_seeds(&mut rng, 4, 60);
    let run = |threads| {
        run_conservative(seeds.clone(), 4, LOOKAHEAD, threads, |s, _, e, out| {
            branch(s, *e, 4, LOOKAHEAD, out)
        })
    };
    let inline = run(1);
    assert_eq!(run(2), inline);
    assert_eq!(run(4), inline);
}
