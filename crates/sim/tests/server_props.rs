//! Property tests for the reservation server and the event queue: the
//! conservation and ordering laws every timing model in the workspace
//! depends on.

use ccn_sim::{EventQueue, Server};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Grants never overlap, never precede their request, and total busy
    /// time equals the sum of requested durations.
    #[test]
    fn server_grants_are_disjoint_and_conserve_time(
        requests in prop::collection::vec((0u64..10_000, 1u64..100), 1..200),
    ) {
        let mut server = Server::new("prop");
        let mut intervals = Vec::new();
        let mut total = 0;
        for &(t, d) in &requests {
            let grant = server.acquire(t, d);
            prop_assert!(grant >= t, "grant {grant} before request {t}");
            intervals.push((grant, grant + d));
            total += d;
        }
        prop_assert_eq!(server.busy_cycles(), total);
        // Grants are handed out in call order and never overlap.
        for w in intervals.windows(2) {
            prop_assert!(w[1].0 >= w[0].1, "overlapping grants {w:?}");
        }
    }

    /// Utilization over any window that covers all grants is <= 1.
    #[test]
    fn server_utilization_bounded(
        requests in prop::collection::vec((0u64..1_000, 1u64..50), 1..100),
    ) {
        let mut server = Server::new("prop");
        let mut end = 0;
        for &(t, d) in &requests {
            let grant = server.acquire(t, d);
            end = end.max(grant + d);
        }
        prop_assert!(server.utilization(end) <= 1.0 + 1e-9);
    }

    /// Events come out in timestamp order, FIFO among equal stamps, and
    /// nothing is lost.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in prop::collection::vec(0u64..1_000, 1..300),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut seen = vec![false; times.len()];
        while let Some((t, i)) = q.pop() {
            prop_assert_eq!(times[i], t, "event carries its own timestamp");
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "stable order violated");
            }
            seen[i] = true;
            last = Some((t, i));
        }
        prop_assert!(seen.iter().all(|&s| s), "every event must come out");
    }

    /// The RNG produces identical streams for identical seeds and bounded
    /// values stay in range.
    #[test]
    fn rng_determinism_and_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = ccn_sim::SplitMix64::new(seed);
        let mut b = ccn_sim::SplitMix64::new(seed);
        for _ in 0..100 {
            let x = a.next_below(bound);
            prop_assert_eq!(x, b.next_below(bound));
            prop_assert!(x < bound);
        }
    }
}
