//! Property tests for the reservation server and the event queue: the
//! conservation and ordering laws every timing model in the workspace
//! depends on.
//!
//! Cases are generated with the in-tree deterministic RNG rather than a
//! property-testing framework, so the suite is hermetic (no registry
//! dependencies) and every run exercises exactly the same inputs.

use ccn_sim::{EventQueue, Server, SplitMix64};

const CASES: u64 = 128;

/// Grants never overlap, never precede their request, and total busy
/// time equals the sum of requested durations.
#[test]
fn server_grants_are_disjoint_and_conserve_time() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA11C + case);
        let n = 1 + rng.next_below(199) as usize;
        let requests: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.next_below(10_000), 1 + rng.next_below(99)))
            .collect();
        let mut server = Server::new("prop");
        let mut intervals = Vec::new();
        let mut total = 0;
        for &(t, d) in &requests {
            let grant = server.acquire(t, d);
            assert!(grant >= t, "case {case}: grant {grant} before request {t}");
            intervals.push((grant, grant + d));
            total += d;
        }
        assert_eq!(server.busy_cycles(), total, "case {case}");
        // Grants are handed out in call order and never overlap.
        for w in intervals.windows(2) {
            assert!(w[1].0 >= w[0].1, "case {case}: overlapping grants {w:?}");
        }
    }
}

/// Utilization over any window that covers all grants is <= 1.
#[test]
fn server_utilization_bounded() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB22D + case);
        let n = 1 + rng.next_below(99) as usize;
        let mut server = Server::new("prop");
        let mut end = 0;
        for _ in 0..n {
            let t = rng.next_below(1_000);
            let d = 1 + rng.next_below(49);
            let grant = server.acquire(t, d);
            end = end.max(grant + d);
        }
        assert!(server.utilization(end) <= 1.0 + 1e-9, "case {case}");
    }
}

/// Events come out in timestamp order, FIFO among equal stamps, and
/// nothing is lost.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xC33E + case);
        let n = 1 + rng.next_below(299) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut seen = vec![false; times.len()];
        while let Some((t, i)) = q.pop() {
            assert_eq!(times[i], t, "case {case}: event carries its own timestamp");
            if let Some((lt, li)) = last {
                assert!(
                    t > lt || (t == lt && i > li),
                    "case {case}: stable order violated"
                );
            }
            seen[i] = true;
            last = Some((t, i));
        }
        assert!(
            seen.iter().all(|&s| s),
            "case {case}: every event must come out"
        );
    }
}

/// The RNG produces identical streams for identical seeds and bounded
/// values stay in range.
#[test]
fn rng_determinism_and_bounds() {
    let mut meta = SplitMix64::new(0xD44F);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let bound = 1 + meta.next_below(999_999);
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..100 {
            let x = a.next_below(bound);
            assert_eq!(x, b.next_below(bound), "case {case}");
            assert!(x < bound, "case {case}");
        }
    }
}
