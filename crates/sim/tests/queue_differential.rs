//! Differential test: the calendar-queue [`EventQueue`] against a
//! straightforward binary-heap reference model.
//!
//! The queue's contract — non-decreasing delivery times, FIFO among
//! same-cycle events, panic on scheduling into the past — is what every
//! golden anchor and conformance digest in this repository implicitly
//! depends on. The bucketed implementation is exercised here with
//! randomized schedules designed to hit its interesting regimes: dense
//! same-cycle ties, jitter inside the wheel window, far-future events
//! that take the overflow path, and drains that force the window to
//! jump over long idle gaps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ccn_sim::{Cycle, EventQueue, SplitMix64};

/// The obviously-correct model: a heap ordered by `(time, seq)`.
#[derive(Default)]
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, u32)>>,
    seq: u64,
    now: Cycle,
}

impl ReferenceQueue {
    fn schedule(&mut self, time: Cycle, event: u32) {
        assert!(time >= self.now);
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, event)));
    }

    fn pop(&mut self) -> Option<(Cycle, u32)> {
        let Reverse((time, _, event)) = self.heap.pop()?;
        self.now = time;
        Some((time, event))
    }
}

/// Runs `ops` random schedule/pop steps on both queues and checks that
/// every pop returns the identical `(time, event)` pair.
fn differential_run(seed: u64, ops: u32) {
    let mut rng = SplitMix64::new(seed);
    let mut queue: EventQueue<u32> = EventQueue::with_capacity(64);
    let mut model = ReferenceQueue::default();
    let mut next_id: u32 = 0;

    for step in 0..ops {
        // Bias toward scheduling so the queues build up a deep backlog,
        // but drain fully a few times per run to exercise empty-queue
        // window jumps.
        let drain = model.heap.is_empty() || rng.chance(0.45);
        if !drain {
            let now = model.now;
            let time = match rng.next_below(8) {
                // Dense ties: land exactly on the current cycle.
                0 | 1 => now,
                // A hot cycle shared by many events.
                2 => now + 3,
                // Typical latency jitter, inside the wheel window.
                3..=5 => now + 1 + rng.next_below(700),
                // Straddle the window boundary (wheel span is 1024).
                6 => now + 900 + rng.next_below(300),
                // Far future: guaranteed overflow, with its own ties.
                _ => now + 10_000 + rng.next_below(90_000) / 17 * 17,
            };
            queue.schedule(time, next_id);
            model.schedule(time, next_id);
            next_id += 1;
        } else {
            let got = queue.pop();
            let want = model.pop();
            assert_eq!(
                got, want,
                "divergence at step {step} (seed {seed}): queue {got:?} vs model {want:?}"
            );
        }
        assert_eq!(queue.len(), model.heap.len());
    }

    // Drain what's left: the tails must agree too.
    loop {
        let got = queue.pop();
        let want = model.pop();
        assert_eq!(got, want, "divergence draining (seed {seed})");
        if got.is_none() {
            break;
        }
    }
    assert_eq!(queue.now(), model.now);
    assert_eq!(queue.total_scheduled(), u64::from(next_id));
}

#[test]
fn random_schedules_match_reference_model() {
    for seed in [1, 0xdead_beef, 42, 7_777_777, 0x0123_4567_89ab_cdef] {
        differential_run(seed, 100_000);
    }
}

#[test]
fn all_ties_on_one_cycle_match_reference_model() {
    let mut queue: EventQueue<u32> = EventQueue::new();
    let mut model = ReferenceQueue::default();
    for i in 0..10_000 {
        queue.schedule(5, i);
        model.schedule(5, i);
    }
    while let Some(want) = model.pop() {
        assert_eq!(queue.pop(), Some(want));
    }
    assert_eq!(queue.pop(), None);
}

#[test]
fn overflow_only_workload_matches_reference_model() {
    // Every event beyond the wheel window: the queue degenerates to its
    // heap, and must still agree with the model.
    let mut rng = SplitMix64::new(99);
    let mut queue: EventQueue<u32> = EventQueue::new();
    let mut model = ReferenceQueue::default();
    for i in 0..5_000 {
        let time = 1_000_000 + rng.next_below(2_000);
        queue.schedule(time, i);
        model.schedule(time, i);
    }
    while let Some(want) = model.pop() {
        assert_eq!(queue.pop(), Some(want));
    }
    assert_eq!(queue.pop(), None);
}

#[test]
#[should_panic(expected = "scheduled at cycle")]
fn past_scheduling_still_panics_after_overflow_jump() {
    // Regression guard for the causality assertion across the window
    // jump: after the clock lands at a far-future cycle, scheduling
    // just behind it must still be rejected.
    let mut q = EventQueue::new();
    q.schedule(500_000, ());
    assert_eq!(q.pop(), Some((500_000, ())));
    q.schedule(499_999, ());
}
