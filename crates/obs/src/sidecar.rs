//! Per-run metrics sidecars for sweep checkpoints.
//!
//! A sweep writes one JSONL checkpoint per configuration; the sidecar
//! mechanism drops one metrics file per run next to it, keyed by the
//! run's stable job id. Sidecar content is produced per run from the
//! deterministic simulation, so the files are byte-identical regardless
//! of how many workers executed the sweep or in what order runs finished.

use ccn_harness::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The sidecar file path for run `id` under `dir`.
///
/// Job ids contain `/` separators (`"tiny/4x2/OceanBase/HWC"`); every
/// character outside `[A-Za-z0-9._-]` maps to `-` so the id flattens to
/// one file name.
pub fn sidecar_path(dir: &Path, id: &str) -> PathBuf {
    let safe: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    dir.join(format!("{safe}.metrics.json"))
}

/// Writes `payload` as the metrics sidecar for run `id` under `dir`
/// (created if missing) and returns the file path. The payload is
/// pretty-rendered, so sidecars diff cleanly across sweeps.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_sidecar(dir: &Path, id: &str, payload: &Json) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = sidecar_path(dir, id);
    fs::write(&path, payload.render_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_flatten_to_file_names() {
        let p = sidecar_path(Path::new("out"), "tiny/4x2/OceanBase/HWC");
        assert_eq!(
            p,
            Path::new("out").join("tiny-4x2-OceanBase-HWC.metrics.json")
        );
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("ccn-obs-sidecar-{}", std::process::id()));
        let payload = Json::obj([("count", Json::UInt(3))]);
        let path = write_sidecar(&dir, "a/b", &payload).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(ccn_harness::json::parse(&text).unwrap(), payload);
        fs::remove_dir_all(&dir).unwrap();
    }
}
