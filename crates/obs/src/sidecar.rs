//! Per-run metrics sidecars for sweep checkpoints.
//!
//! A sweep writes one JSONL checkpoint per configuration; the sidecar
//! mechanism drops one metrics file per run next to it, keyed by the
//! run's stable job id. Sidecar content is produced per run from the
//! deterministic simulation, so the files are byte-identical regardless
//! of how many workers executed the sweep or in what order runs finished.

use ccn_harness::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The sidecar schema version this crate writes. Bump on any breaking
/// change to the sidecar payload shape; [`read_sidecar`] rejects files
/// written by a different (unknown) version instead of misreading them.
pub const SIDECAR_SCHEMA_VERSION: u64 = 1;

/// Why a sidecar could not be read back.
#[derive(Debug)]
pub enum SidecarError {
    /// The file could not be read.
    Io(io::Error),
    /// The file is not well-formed JSON.
    Parse(String),
    /// The payload has no `schema_version` field (pre-versioning file or
    /// foreign content).
    MissingSchemaVersion,
    /// The payload declares a schema version this reader does not know.
    UnknownSchemaVersion(u64),
}

impl std::fmt::Display for SidecarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SidecarError::Io(e) => write!(f, "sidecar read failed: {e}"),
            SidecarError::Parse(e) => write!(f, "sidecar is not valid JSON: {e}"),
            SidecarError::MissingSchemaVersion => {
                write!(f, "sidecar has no schema_version field")
            }
            SidecarError::UnknownSchemaVersion(v) => write!(
                f,
                "sidecar schema_version {v} is not supported (reader knows \
                 {SIDECAR_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for SidecarError {}

/// Reads the metrics sidecar for run `id` under `dir`, verifying its
/// schema version.
///
/// # Errors
///
/// Returns [`SidecarError`] on I/O failure, malformed JSON, a missing
/// `schema_version` field, or a version other than
/// [`SIDECAR_SCHEMA_VERSION`].
pub fn read_sidecar(dir: &Path, id: &str) -> Result<Json, SidecarError> {
    let text = fs::read_to_string(sidecar_path(dir, id)).map_err(SidecarError::Io)?;
    let payload =
        ccn_harness::json::parse(&text).map_err(|e| SidecarError::Parse(e.to_string()))?;
    match payload.get("schema_version").and_then(Json::as_u64) {
        None => Err(SidecarError::MissingSchemaVersion),
        Some(SIDECAR_SCHEMA_VERSION) => Ok(payload),
        Some(other) => Err(SidecarError::UnknownSchemaVersion(other)),
    }
}

/// The sidecar file path for run `id` under `dir`.
///
/// Job ids contain `/` separators (`"tiny/4x2/OceanBase/HWC"`); every
/// character outside `[A-Za-z0-9._-]` maps to `-` so the id flattens to
/// one file name.
pub fn sidecar_path(dir: &Path, id: &str) -> PathBuf {
    let safe: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    dir.join(format!("{safe}.metrics.json"))
}

/// Writes `payload` as the metrics sidecar for run `id` under `dir`
/// (created if missing) and returns the file path. The payload is
/// pretty-rendered, so sidecars diff cleanly across sweeps.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the file.
pub fn write_sidecar(dir: &Path, id: &str, payload: &Json) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = sidecar_path(dir, id);
    fs::write(&path, payload.render_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_flatten_to_file_names() {
        let p = sidecar_path(Path::new("out"), "tiny/4x2/OceanBase/HWC");
        assert_eq!(
            p,
            Path::new("out").join("tiny-4x2-OceanBase-HWC.metrics.json")
        );
    }

    #[test]
    fn write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("ccn-obs-sidecar-{}", std::process::id()));
        let payload = Json::obj([("count", Json::UInt(3))]);
        let path = write_sidecar(&dir, "a/b", &payload).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(ccn_harness::json::parse(&text).unwrap(), payload);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn versioned_sidecar_round_trips() {
        let dir = std::env::temp_dir().join(format!("ccn-obs-sidecar-v-{}", std::process::id()));
        let payload = Json::obj([
            ("schema_version", Json::UInt(SIDECAR_SCHEMA_VERSION)),
            ("count", Json::UInt(3)),
        ]);
        write_sidecar(&dir, "a/b", &payload).unwrap();
        assert_eq!(read_sidecar(&dir, "a/b").unwrap(), payload);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_rejects_unknown_and_missing_versions() {
        let dir = std::env::temp_dir().join(format!("ccn-obs-sidecar-r-{}", std::process::id()));
        write_sidecar(
            &dir,
            "future",
            &Json::obj([("schema_version", Json::UInt(999))]),
        )
        .unwrap();
        match read_sidecar(&dir, "future") {
            Err(SidecarError::UnknownSchemaVersion(999)) => {}
            other => panic!("expected UnknownSchemaVersion, got {other:?}"),
        }
        write_sidecar(&dir, "legacy", &Json::obj([("count", Json::UInt(1))])).unwrap();
        match read_sidecar(&dir, "legacy") {
            Err(SidecarError::MissingSchemaVersion) => {}
            other => panic!("expected MissingSchemaVersion, got {other:?}"),
        }
        match read_sidecar(&dir, "absent") {
            Err(SidecarError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
        fs::write(sidecar_path(&dir, "garbled"), "not json").unwrap();
        match read_sidecar(&dir, "garbled") {
            Err(SidecarError::Parse(_)) => {}
            other => panic!("expected Parse, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
