//! Observability layer over the statistics spine.
//!
//! The simulator's components already keep every counter the paper's
//! tables need; this crate turns those counters into *time-resolved* and
//! *distribution-resolved* artifacts without touching simulated behavior:
//!
//! - [`histogram_to_json`] / [`histogram_from_json`] give the
//!   the [`ccn_sim::Histogram`] primitive a lossless, deterministic
//!   JSON form (sorted keys, sparse buckets);
//! - [`Sampler`] walks a [`ComponentStats`](ccn_sim::ComponentStats) tree
//!   at a fixed cycle cadence and accumulates a columnar [`Timeline`] of
//!   per-component series (occupancy, queue depth, dispatch backlog);
//! - [`ChromeTrace`] converts protocol-handler executions and timeline
//!   counters into the Chrome `trace_event` JSON format that
//!   `chrome://tracing` and Perfetto load directly;
//! - [`FlightRecorder`] assigns every coherence transaction a stable id
//!   and turns its causally-linked span events into an exact per-category
//!   cycle decomposition (queueing, occupancy, bus, network, stall);
//! - [`write_sidecar`] drops per-run metrics files next to a sweep's
//!   checkpoints so `repro --jobs N` runs keep their distributions.
//!
//! Everything here is observational: feeding the same deterministic
//! simulation through this crate twice produces byte-identical JSON.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod flight;
pub mod sidecar;
pub mod timeline;

pub use chrome::{cycles_to_us, ChromeTrace};
pub use flight::{BlameSummary, Category, FlightEvent, FlightRecorder, TxnId, TxnRecord};
pub use sidecar::{
    read_sidecar, sidecar_path, write_sidecar, SidecarError, SIDECAR_SCHEMA_VERSION,
};
pub use timeline::{Sampler, SeriesKind, Timeline};

use ccn_harness::Json;
use ccn_sim::Histogram;

/// Serializes a histogram as a deterministic JSON object.
///
/// Buckets are stored sparsely as `[bucket_index, count]` pairs in
/// ascending index order; `count`, `sum`, `min` and `max` are the exact
/// aggregates. The sum is saturated to `u64` (latency sums in this
/// simulator sit far below that; a run would need ~2^64 total cycles of
/// recorded delay to clip).
pub fn histogram_to_json(h: &Histogram) -> Json {
    Json::obj([
        ("count", Json::UInt(h.count())),
        (
            "sum",
            Json::UInt(u64::try_from(h.sum()).unwrap_or(u64::MAX)),
        ),
        ("min", Json::UInt(h.min().unwrap_or(0))),
        ("max", Json::UInt(h.max().unwrap_or(0))),
        (
            "buckets",
            Json::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(i, c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(c)]))
                    .collect(),
            ),
        ),
    ])
}

/// Rebuilds a histogram from [`histogram_to_json`] output. Returns `None`
/// if the value is not a well-formed histogram object.
pub fn histogram_from_json(j: &Json) -> Option<Histogram> {
    let buckets: Vec<(usize, u64)> = match j.get("buckets")? {
        Json::Arr(items) => items
            .iter()
            .map(|pair| match pair {
                Json::Arr(iv) if iv.len() == 2 => Some((iv[0].as_u64()? as usize, iv[1].as_u64()?)),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let h = Histogram::from_parts(
        &buckets,
        u128::from(j.get("sum")?.as_u64()?),
        j.get("min")?.as_u64()?,
        j.get("max")?.as_u64()?,
    );
    (h.count() == j.get("count")?.as_u64()?).then_some(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_json_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 900, 1 << 33] {
            h.record(v);
        }
        let j = histogram_to_json(&h);
        let back = histogram_from_json(&j).expect("well-formed");
        assert_eq!(back, h);
        // Text form round-trips through the parser too.
        let reparsed = ccn_harness::json::parse(&j.to_string()).unwrap();
        assert_eq!(histogram_from_json(&reparsed).unwrap(), h);
    }

    #[test]
    fn histogram_json_is_deterministic_text() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(9);
        let a = histogram_to_json(&h).to_string();
        let b = histogram_to_json(&h.clone()).to_string();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"buckets\":"));
    }

    #[test]
    fn malformed_histogram_json_rejected() {
        assert!(histogram_from_json(&Json::Null).is_none());
        assert!(histogram_from_json(&Json::obj([("count", Json::UInt(1))])).is_none());
        // Count mismatch is rejected rather than silently accepted.
        let mut h = Histogram::new();
        h.record(3);
        let mut j = histogram_to_json(&h);
        if let Json::Obj(map) = &mut j {
            map.insert("count".into(), Json::UInt(99));
        }
        assert!(histogram_from_json(&j).is_none());
    }
}
