//! Transaction flight recorder: per-transaction causal tracing with an
//! exact cycle decomposition.
//!
//! Every coherence transaction (an L2 miss from issue to fill) gets a
//! stable [`TxnId`] at issue; the simulator feeds the recorder one
//! [`FlightEvent`] per hop (bus latch, controller dispatch, handler
//! occupancy, network delivery, protocol replay). When the fill arrives,
//! the recorder telescopes the milestones into a per-[`Category`] cycle
//! decomposition that sums *exactly* to the transaction's end-to-end miss
//! latency — the same quantity the machine-wide miss-latency histogram
//! records — so `repro explain` output and the aggregate tables can never
//! disagree.
//!
//! The recorder is strictly observational: it only consumes event times
//! the simulator already computed, never influences scheduling, and keeps
//! completed transactions in a bounded ring (oldest dropped and counted),
//! so goldens and digests are byte-identical with it on or off.
//!
//! Determinism rules: events are applied in the simulator's canonical
//! event order (parallel shards buffer events per window and the barrier
//! merges them in sequential order), ids are assigned per-processor in
//! issue order, and every query sorts with total tie-breaks — so all
//! artifacts derived from the recorder are byte-identical across reruns,
//! `--jobs` counts, and `--threads N`.

use ccn_harness::Json;
use ccn_sim::Cycle;
use std::collections::{HashMap, VecDeque};

/// Stable identity of one coherence transaction: the issuing processor's
/// global index and a per-processor issue sequence number. Renders as
/// `P<proc>#<seq>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Global index of the issuing processor.
    pub proc: u32,
    /// Issue sequence number within that processor (0-based).
    pub seq: u32,
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}#{}", self.proc, self.seq)
    }
}

impl TxnId {
    /// Parses the `P<proc>#<seq>` rendering back into an id.
    pub fn parse(s: &str) -> Option<TxnId> {
        let rest = s.strip_prefix('P')?;
        let (proc, seq) = rest.split_once('#')?;
        Some(TxnId {
            proc: proc.parse().ok()?,
            seq: seq.parse().ok()?,
        })
    }
}

/// Where a transaction's cycles are attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Local bus: arbitration, snoop, data transfer, and fill overhead
    /// (also the residual closing segment up to the fill).
    Bus,
    /// Waiting in a coherence-controller inbound queue for an engine.
    Queue,
    /// Protocol-handler occupancy on an engine.
    Occupancy,
    /// Network transit (inject to deliver), both request and reply legs.
    Net,
    /// Protocol stall: directory Busy/Recall/retry replay delay.
    Stall,
}

impl Category {
    /// All categories, in decomposition (and rendering) order.
    pub const ALL: [Category; 5] = [
        Category::Bus,
        Category::Queue,
        Category::Occupancy,
        Category::Net,
        Category::Stall,
    ];

    /// Dense index for per-category arrays.
    pub fn index(self) -> usize {
        match self {
            Category::Bus => 0,
            Category::Queue => 1,
            Category::Occupancy => 2,
            Category::Net => 3,
            Category::Stall => 4,
        }
    }

    /// Stable lowercase label (JSON keys, table headers).
    pub fn label(self) -> &'static str {
        match self {
            Category::Bus => "bus",
            Category::Queue => "queue",
            Category::Occupancy => "occupancy",
            Category::Net => "net",
            Category::Stall => "stall",
        }
    }
}

/// One recorded handler execution on behalf of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Handler start time (engine acquire).
    pub time: Cycle,
    /// Node the handler ran on.
    pub at_node: u16,
    /// Engine within that node's controller.
    pub engine: u8,
    /// Handler occupancy in cycles.
    pub occupancy: Cycle,
    /// Handler label (Table 4 row name).
    pub handler: &'static str,
    /// Transaction phase the handler belongs to.
    pub phase: &'static str,
}

/// One instrumentation event fed to the recorder by the simulator.
///
/// Transactions are keyed by `(node, line)` — the requesting node and the
/// cache line — which is unique while the transaction is outstanding
/// (one MSHR per line per node).
#[derive(Debug, Clone, Copy)]
pub enum FlightEvent {
    /// A processor issued a miss: a new transaction begins.
    Begin {
        /// Requesting node.
        node: u16,
        /// Issuing processor (global index).
        proc: u32,
        /// Cache line address.
        line: u64,
        /// Issue time (miss detected, processor blocked).
        time: Cycle,
        /// Bus operation label for the request.
        op: &'static str,
    },
    /// A causal milestone: cycles from the previous milestone up to
    /// `time` are attributed to `cat`.
    Milestone {
        /// Requesting node (transaction key).
        node: u16,
        /// Cache line address (transaction key).
        line: u64,
        /// Milestone time.
        time: Cycle,
        /// Category the preceding segment belongs to.
        cat: Category,
    },
    /// A protocol handler executed on behalf of the transaction
    /// (descriptive; attribution happens via `Milestone` events).
    Hop {
        /// Requesting node (transaction key).
        node: u16,
        /// Cache line address (transaction key).
        line: u64,
        /// The hop itself.
        hop: Hop,
    },
    /// The fill arrived: the transaction completes at `time`.
    Complete {
        /// Requesting node (transaction key).
        node: u16,
        /// Cache line address (transaction key).
        line: u64,
        /// Fill time; `time - issue` is the recorded miss latency.
        time: Cycle,
    },
    /// The measured phase starts: reset aggregates, keep live
    /// transactions (in-flight misses crossing the boundary land in the
    /// measured miss-latency histograms, so the recorder keeps them too).
    MeasureReset,
}

/// A completed transaction with its exact cycle decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// Stable transaction id.
    pub id: TxnId,
    /// Requesting node.
    pub node: u16,
    /// Cache line address.
    pub line: u64,
    /// Bus operation label of the original request.
    pub op: &'static str,
    /// Issue time.
    pub issue: Cycle,
    /// Fill time.
    pub complete: Cycle,
    /// Cycles per category, indexed by [`Category::index`]. Sums exactly
    /// to [`latency`](TxnRecord::latency).
    pub components: [u64; 5],
    /// Handler executions on behalf of this transaction, in event order.
    pub hops: Vec<Hop>,
}

impl TxnRecord {
    /// End-to-end miss latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.complete - self.issue
    }

    /// Sum of the per-category components (always equals
    /// [`latency`](TxnRecord::latency)).
    pub fn components_sum(&self) -> u64 {
        self.components.iter().sum()
    }
}

#[derive(Debug)]
struct LiveTxn {
    id: TxnId,
    op: &'static str,
    issue: Cycle,
    /// `(category, milestone time)` in event order.
    milestones: Vec<(Category, Cycle)>,
    hops: Vec<Hop>,
}

/// Machine-wide blame decomposition over the measured phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameSummary {
    /// Transactions completed since the measurement reset (including
    /// records the bounded ring has since dropped).
    pub transactions: u64,
    /// Completed records still retained in the ring.
    pub retained: u64,
    /// Completed records the bounded ring discarded.
    pub dropped: u64,
    /// Total miss cycles across all completed transactions.
    pub total_cycles: u64,
    /// Miss cycles per category (sums to `total_cycles`); immune to ring
    /// drops — accumulated incrementally at completion.
    pub component_cycles: [u64; 5],
    /// Latency (cycles) of the p99 transaction among retained records
    /// (`None` when nothing is retained).
    pub p99_threshold: Option<u64>,
    /// Total miss cycles of the p99 tail (retained records with latency
    /// at or above the threshold).
    pub tail_cycles: u64,
    /// Miss cycles per category within the p99 tail.
    pub tail_component_cycles: [u64; 5],
}

impl BlameSummary {
    /// Deterministic JSON form (sorted keys; stable category labels).
    pub fn to_json(&self) -> Json {
        fn comps(c: &[u64; 5]) -> Json {
            Json::Obj(
                Category::ALL
                    .iter()
                    .map(|cat| (cat.label().to_string(), Json::UInt(c[cat.index()])))
                    .collect(),
            )
        }
        Json::obj([
            ("transactions", Json::UInt(self.transactions)),
            ("retained", Json::UInt(self.retained)),
            ("dropped", Json::UInt(self.dropped)),
            ("total_cycles", Json::UInt(self.total_cycles)),
            ("component_cycles", comps(&self.component_cycles)),
            (
                "p99_threshold",
                match self.p99_threshold {
                    Some(t) => Json::UInt(t),
                    None => Json::Null,
                },
            ),
            ("tail_cycles", Json::UInt(self.tail_cycles)),
            ("tail_component_cycles", comps(&self.tail_component_cycles)),
        ])
    }
}

/// The flight recorder: applies [`FlightEvent`]s and keeps completed
/// transactions in a bounded ring plus incremental per-category totals.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Next issue sequence number per processor.
    next_seq: HashMap<u32, u32>,
    /// In-flight transactions keyed by `(node, line)`.
    live: HashMap<(u16, u64), LiveTxn>,
    /// Completed transactions, oldest first.
    completed: VecDeque<TxnRecord>,
    capacity: usize,
    dropped: u64,
    /// Completions since the last measurement reset.
    transactions: u64,
    total_cycles: u64,
    component_cycles: [u64; 5],
    /// Recycled milestone buffers (the apply path reuses them so the
    /// steady state stays off the allocator once warm).
    milestone_pool: Vec<Vec<(Category, Cycle)>>,
    hop_pool: Vec<Vec<Hop>>,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` completed transactions.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            next_seq: HashMap::new(),
            live: HashMap::new(),
            completed: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
            transactions: 0,
            total_cycles: 0,
            component_cycles: [0; 5],
            milestone_pool: Vec::new(),
            hop_pool: Vec::new(),
        }
    }

    /// Applies one instrumentation event.
    pub fn apply(&mut self, event: FlightEvent) {
        match event {
            FlightEvent::Begin {
                node,
                proc,
                line,
                time,
                op,
            } => {
                let seq = self.next_seq.entry(proc).or_insert(0);
                let id = TxnId { proc, seq: *seq };
                *seq += 1;
                let txn = LiveTxn {
                    id,
                    op,
                    issue: time,
                    milestones: self.milestone_pool.pop().unwrap_or_default(),
                    hops: self.hop_pool.pop().unwrap_or_default(),
                };
                if let Some(stale) = self.live.insert((node, line), txn) {
                    self.recycle(stale.milestones, stale.hops);
                }
            }
            FlightEvent::Milestone {
                node,
                line,
                time,
                cat,
            } => {
                if let Some(txn) = self.live.get_mut(&(node, line)) {
                    txn.milestones.push((cat, time));
                }
            }
            FlightEvent::Hop { node, line, hop } => {
                if let Some(txn) = self.live.get_mut(&(node, line)) {
                    txn.hops.push(hop);
                }
            }
            FlightEvent::Complete { node, line, time } => {
                if let Some(txn) = self.live.remove(&(node, line)) {
                    self.finish(node, line, time, txn);
                }
            }
            FlightEvent::MeasureReset => {
                self.transactions = 0;
                self.total_cycles = 0;
                self.component_cycles = [0; 5];
                self.dropped = 0;
                while let Some(rec) = self.completed.pop_front() {
                    self.hop_pool.push({
                        let mut h = rec.hops;
                        h.clear();
                        h
                    });
                }
            }
        }
    }

    /// Telescopes the milestones into the exact decomposition and files
    /// the completed record.
    fn finish(&mut self, node: u16, line: u64, complete: Cycle, txn: LiveTxn) {
        debug_assert!(complete >= txn.issue, "fill before issue");
        let complete = complete.max(txn.issue);
        let mut components = [0u64; 5];
        let mut last = txn.issue;
        for &(cat, t) in &txn.milestones {
            // Clamp to the fill time: an occupancy milestone can land
            // past the fill (the critical word returns before the handler
            // retires) and side-path milestones can arrive out of time
            // order; clamping keeps every segment non-negative and the
            // total telescoping exactly to `complete - issue`.
            let ct = t.min(complete);
            components[cat.index()] += ct.saturating_sub(last);
            last = last.max(ct);
        }
        // The closing segment (last milestone to fill) rides the local
        // bus: data transfer plus fill overhead.
        components[Category::Bus.index()] += complete - last;
        let latency: u64 = complete - txn.issue;
        debug_assert_eq!(components.iter().sum::<u64>(), latency);
        self.transactions += 1;
        self.total_cycles += latency;
        for (total, c) in self.component_cycles.iter_mut().zip(components) {
            *total += c;
        }
        let LiveTxn {
            id,
            op,
            issue,
            milestones,
            hops,
        } = txn;
        self.milestone_pool.push({
            let mut m = milestones;
            m.clear();
            m
        });
        if self.capacity == 0 {
            self.dropped += 1;
            self.hop_pool.push({
                let mut h = hops;
                h.clear();
                h
            });
            return;
        }
        if self.completed.len() == self.capacity {
            if let Some(old) = self.completed.pop_front() {
                self.dropped += 1;
                self.hop_pool.push({
                    let mut h = old.hops;
                    h.clear();
                    h
                });
            }
        }
        self.completed.push_back(TxnRecord {
            id,
            node,
            line,
            op,
            issue,
            complete,
            components,
            hops,
        });
    }

    fn recycle(&mut self, mut milestones: Vec<(Category, Cycle)>, mut hops: Vec<Hop>) {
        milestones.clear();
        hops.clear();
        self.milestone_pool.push(milestones);
        self.hop_pool.push(hops);
    }

    /// Completed transactions retained in the ring, oldest first.
    pub fn completed(&self) -> impl Iterator<Item = &TxnRecord> {
        self.completed.iter()
    }

    /// How many completed records the bounded ring has discarded.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Transactions completed since the last measurement reset.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// The retained record with this id, if any.
    pub fn find(&self, id: TxnId) -> Option<&TxnRecord> {
        self.completed.iter().find(|r| r.id == id)
    }

    /// The `k` slowest retained transactions, ordered by latency
    /// descending with the transaction id as a total tie-break.
    pub fn slowest(&self, k: usize) -> Vec<&TxnRecord> {
        let mut all: Vec<&TxnRecord> = self.completed.iter().collect();
        all.sort_by(|a, b| b.latency().cmp(&a.latency()).then_with(|| a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    /// Machine-wide blame decomposition (totals are drop-immune; the
    /// p99-tail slice is computed over retained records).
    pub fn blame(&self) -> BlameSummary {
        let mut p99_threshold = None;
        let mut tail_cycles = 0;
        let mut tail_component_cycles = [0u64; 5];
        if !self.completed.is_empty() {
            let mut lat: Vec<u64> = self.completed.iter().map(|r| r.latency()).collect();
            lat.sort_unstable();
            let n = lat.len();
            // Rank ceil(0.99 * n), 1-indexed: the latency at or above
            // which a transaction is in the top 1%.
            let rank = (n * 99).div_ceil(100).max(1);
            let threshold = lat[rank - 1];
            p99_threshold = Some(threshold);
            for r in &self.completed {
                if r.latency() >= threshold {
                    tail_cycles += r.latency();
                    for (t, c) in tail_component_cycles.iter_mut().zip(r.components) {
                        *t += c;
                    }
                }
            }
        }
        BlameSummary {
            transactions: self.transactions,
            retained: self.completed.len() as u64,
            dropped: self.dropped,
            total_cycles: self.total_cycles,
            component_cycles: self.component_cycles,
            p99_threshold,
            tail_cycles,
            tail_component_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(rec: &mut FlightRecorder, node: u16, proc: u32, line: u64, time: Cycle) {
        rec.apply(FlightEvent::Begin {
            node,
            proc,
            line,
            time,
            op: "Read",
        });
    }

    #[test]
    fn txn_id_renders_and_parses() {
        let id = TxnId { proc: 12, seq: 345 };
        assert_eq!(id.to_string(), "P12#345");
        assert_eq!(TxnId::parse("P12#345"), Some(id));
        assert_eq!(TxnId::parse("12#345"), None);
        assert_eq!(TxnId::parse("P12"), None);
        assert_eq!(TxnId::parse("P#"), None);
    }

    #[test]
    fn decomposition_sums_exactly_to_latency() {
        let mut rec = FlightRecorder::new(16);
        begin(&mut rec, 0, 0, 64, 100);
        for (cat, t) in [
            (Category::Bus, 120),
            (Category::Queue, 135),
            (Category::Occupancy, 155),
            (Category::Net, 180),
        ] {
            rec.apply(FlightEvent::Milestone {
                node: 0,
                line: 64,
                time: t,
                cat,
            });
        }
        rec.apply(FlightEvent::Complete {
            node: 0,
            line: 64,
            time: 200,
        });
        let r = rec.completed().next().unwrap();
        assert_eq!(r.latency(), 100);
        assert_eq!(r.components_sum(), 100);
        assert_eq!(r.components, [20 + 20, 15, 20, 25, 0]);
    }

    #[test]
    fn out_of_order_and_overshooting_milestones_still_sum_exactly() {
        let mut rec = FlightRecorder::new(16);
        begin(&mut rec, 3, 7, 128, 1000);
        // An occupancy milestone past the fill time (handler retires
        // after the critical word) and a side-path milestone that moves
        // backwards in time.
        for (cat, t) in [
            (Category::Net, 1100),
            (Category::Occupancy, 1400),
            (Category::Stall, 1050),
            (Category::Net, 1250),
        ] {
            rec.apply(FlightEvent::Milestone {
                node: 3,
                line: 128,
                time: t,
                cat,
            });
        }
        rec.apply(FlightEvent::Complete {
            node: 3,
            line: 128,
            time: 1300,
        });
        let r = rec.completed().next().unwrap();
        assert_eq!(r.latency(), 300);
        assert_eq!(r.components_sum(), 300, "clamped telescoping is exact");
        // Occupancy clamps to the fill; the backwards stall milestone
        // contributes nothing; the final net milestone is inside the
        // already-attributed range.
        assert_eq!(r.components, [0, 0, 200, 100, 0]);
    }

    #[test]
    fn ids_are_per_processor_issue_order() {
        let mut rec = FlightRecorder::new(16);
        begin(&mut rec, 0, 0, 64, 10);
        rec.apply(FlightEvent::Complete {
            node: 0,
            line: 64,
            time: 20,
        });
        begin(&mut rec, 1, 4, 64, 12);
        begin(&mut rec, 0, 0, 192, 30);
        rec.apply(FlightEvent::Complete {
            node: 0,
            line: 192,
            time: 44,
        });
        let ids: Vec<String> = rec.completed().map(|r| r.id.to_string()).collect();
        assert_eq!(ids, ["P0#0", "P0#1"]);
        // The other processor's transaction is still live.
        assert_eq!(rec.transactions(), 2);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..4u64 {
            begin(&mut rec, 0, 0, 64 * (i + 1), 10 * i);
            rec.apply(FlightEvent::Complete {
                node: 0,
                line: 64 * (i + 1),
                time: 10 * i + 5,
            });
        }
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.transactions(), 4);
        let blame = rec.blame();
        // Totals are immune to ring drops.
        assert_eq!(blame.total_cycles, 4 * 5);
        assert_eq!(blame.retained, 2);
        assert_eq!(blame.dropped, 2);
    }

    #[test]
    fn zero_capacity_counts_every_completion_as_dropped() {
        let mut rec = FlightRecorder::new(0);
        begin(&mut rec, 0, 0, 64, 0);
        rec.apply(FlightEvent::Complete {
            node: 0,
            line: 64,
            time: 9,
        });
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.completed().count(), 0);
        assert_eq!(rec.blame().total_cycles, 9);
    }

    #[test]
    fn milestones_for_unknown_transactions_are_ignored() {
        let mut rec = FlightRecorder::new(4);
        rec.apply(FlightEvent::Milestone {
            node: 9,
            line: 640,
            time: 5,
            cat: Category::Net,
        });
        rec.apply(FlightEvent::Complete {
            node: 9,
            line: 640,
            time: 6,
        });
        assert_eq!(rec.transactions(), 0);
    }

    #[test]
    fn measure_reset_clears_aggregates_but_keeps_live() {
        let mut rec = FlightRecorder::new(4);
        begin(&mut rec, 0, 0, 64, 0);
        rec.apply(FlightEvent::Complete {
            node: 0,
            line: 64,
            time: 7,
        });
        begin(&mut rec, 1, 4, 128, 3);
        rec.apply(FlightEvent::MeasureReset);
        assert_eq!(rec.transactions(), 0);
        assert_eq!(rec.completed().count(), 0);
        assert_eq!(rec.blame().total_cycles, 0);
        // The in-flight transaction crossed the boundary and still
        // completes into the measured window.
        rec.apply(FlightEvent::Complete {
            node: 1,
            line: 128,
            time: 23,
        });
        assert_eq!(rec.transactions(), 1);
        assert_eq!(rec.completed().next().unwrap().latency(), 20);
        // Ids keep advancing across the reset.
        begin(&mut rec, 0, 0, 64, 30);
        rec.apply(FlightEvent::Complete {
            node: 0,
            line: 64,
            time: 35,
        });
        assert_eq!(rec.completed().nth(1).unwrap().id.to_string(), "P0#1");
    }

    #[test]
    fn slowest_orders_by_latency_then_id() {
        let mut rec = FlightRecorder::new(8);
        for (proc, line, issue, fill) in
            [(0u32, 64u64, 0u64, 50u64), (1, 128, 0, 90), (2, 192, 0, 50)]
        {
            begin(&mut rec, 0, proc, line, issue);
            rec.apply(FlightEvent::Complete {
                node: 0,
                line,
                time: fill,
            });
        }
        let top: Vec<String> = rec.slowest(3).iter().map(|r| r.id.to_string()).collect();
        assert_eq!(top, ["P1#0", "P0#0", "P2#0"]);
        assert_eq!(rec.slowest(1).len(), 1);
        assert_eq!(rec.find(TxnId { proc: 2, seq: 0 }).unwrap().latency(), 50);
        assert!(rec.find(TxnId { proc: 9, seq: 9 }).is_none());
    }

    #[test]
    fn blame_p99_tail_over_retained() {
        let mut rec = FlightRecorder::new(256);
        for i in 0..100u64 {
            begin(&mut rec, 0, i as u32, 64 * (i + 1), 0);
            rec.apply(FlightEvent::Complete {
                node: 0,
                line: 64 * (i + 1),
                time: i + 1,
            });
        }
        let blame = rec.blame();
        // Rank ceil(0.99*100) = 99 → threshold is the 99th smallest
        // latency; the tail holds the two records at or above it.
        assert_eq!(blame.p99_threshold, Some(99));
        assert_eq!(blame.tail_cycles, 99 + 100);
        assert_eq!(blame.total_cycles, (1..=100).sum::<u64>());
        // All-bus decomposition: no milestones were recorded.
        assert_eq!(
            blame.component_cycles[Category::Bus.index()],
            blame.total_cycles
        );
        assert_eq!(blame.transactions, 100);
    }

    #[test]
    fn blame_json_is_deterministic() {
        let mut rec = FlightRecorder::new(4);
        begin(&mut rec, 0, 0, 64, 0);
        rec.apply(FlightEvent::Complete {
            node: 0,
            line: 64,
            time: 10,
        });
        let a = rec.blame().to_json().to_string();
        let b = rec.blame().to_json().to_string();
        assert_eq!(a, b);
        assert!(a.contains("\"component_cycles\""));
        assert!(a.contains("\"p99_threshold\":10"));
        let empty = FlightRecorder::new(4).blame().to_json().to_string();
        assert!(empty.contains("\"p99_threshold\":null"));
    }

    #[test]
    fn hops_are_recorded_in_order() {
        let mut rec = FlightRecorder::new(4);
        begin(&mut rec, 2, 5, 64, 0);
        for (t, handler) in [(10, "home_read_clean"), (30, "req_data_resp")] {
            rec.apply(FlightEvent::Hop {
                node: 2,
                line: 64,
                hop: Hop {
                    time: t,
                    at_node: 1,
                    engine: 0,
                    occupancy: 14,
                    handler,
                    phase: "home-request",
                },
            });
        }
        rec.apply(FlightEvent::Complete {
            node: 2,
            line: 64,
            time: 50,
        });
        let r = rec.completed().next().unwrap();
        assert_eq!(r.hops.len(), 2);
        assert_eq!(r.hops[0].handler, "home_read_clean");
        assert_eq!(r.hops[1].time, 30);
    }
}
