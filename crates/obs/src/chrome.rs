//! Chrome `trace_event` JSON export.
//!
//! Builds the "JSON Array Format with metadata" that `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev) load directly: complete
//! (`"ph": "X"`) duration events for protocol-handler executions, counter
//! (`"ph": "C"`) events for sampled time series, and metadata
//! (`"ph": "M"`) events naming processes and threads. Processes map to
//! simulated nodes and threads to protocol engines, so a loaded trace
//! shows one swimlane per engine with handler occupancy laid out on the
//! simulated clock.
//!
//! Timestamps are microseconds (the format's unit); the conversion from
//! CPU cycles is a fixed multiply, so equal cycle counts always render as
//! equal timestamps and export is deterministic. Events are emitted
//! sorted by `(pid, tid, ts)`, which makes per-track timestamps monotone
//! — the property the trace-schema test checks.

use ccn_harness::Json;
use ccn_sim::Cycle;
use std::collections::BTreeMap;

/// Converts CPU cycles to `trace_event` microseconds (5 ns per cycle).
pub fn cycles_to_us(cycles: Cycle) -> f64 {
    ccn_sim::cycles_to_ns(cycles) / 1000.0
}

#[derive(Debug, Clone)]
struct Span {
    pid: u64,
    tid: u64,
    ts: Cycle,
    dur: Cycle,
    name: String,
    cat: &'static str,
    args: Vec<(&'static str, Json)>,
}

#[derive(Debug, Clone)]
struct Counter {
    pid: u64,
    ts: Cycle,
    name: String,
    values: Vec<(String, f64)>,
}

#[derive(Debug, Clone)]
struct Flow {
    id: u64,
    name: String,
    /// `(pid, tid, ts)` anchors, in causal order.
    points: Vec<(u64, u64, Cycle)>,
}

/// Accumulates simulation events and renders them as one Chrome
/// `trace_event` JSON document.
///
/// ```
/// let mut trace = ccn_obs::ChromeTrace::new();
/// trace.set_process_name(0, "node0");
/// trace.set_thread_name(0, 1, "engine1.RPE");
/// trace.add_span((0, 1), "remote read", "handler", 100, 26, vec![]);
/// let json = trace.into_json();
/// assert!(json.get("traceEvents").is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    spans: Vec<Span>,
    counters: Vec<Counter>,
    flows: Vec<Flow>,
    process_names: BTreeMap<u64, String>,
    thread_names: BTreeMap<(u64, u64), String>,
    other_data: BTreeMap<String, Json>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Names the track group for `pid` (one per simulated node).
    pub fn set_process_name(&mut self, pid: u64, name: impl Into<String>) {
        self.process_names.insert(pid, name.into());
    }

    /// Names the track for `(pid, tid)` (one per protocol engine).
    pub fn set_thread_name(&mut self, pid: u64, tid: u64, name: impl Into<String>) {
        self.thread_names.insert((pid, tid), name.into());
    }

    /// Adds a complete (`"X"`) event: a handler execution of `dur` cycles
    /// starting at cycle `ts` on `track` `(pid, tid)`, with optional
    /// `args` shown in the inspector pane.
    pub fn add_span(
        &mut self,
        track: (u64, u64),
        name: impl Into<String>,
        cat: &'static str,
        ts: Cycle,
        dur: Cycle,
        args: Vec<(&'static str, Json)>,
    ) {
        self.spans.push(Span {
            pid: track.0,
            tid: track.1,
            ts,
            dur,
            name: name.into(),
            cat,
            args,
        });
    }

    /// Adds a counter (`"C"`) event: the sampled `values` of counter
    /// track `name` under process `pid` at cycle `ts`. Perfetto renders
    /// each value key as one stacked band.
    pub fn add_counter(
        &mut self,
        pid: u64,
        name: impl Into<String>,
        ts: Cycle,
        values: Vec<(String, f64)>,
    ) {
        self.counters.push(Counter {
            pid,
            ts,
            name: name.into(),
            values,
        });
    }

    /// Adds a flow (`"s"`/`"t"`/`"f"` chain) linking the given
    /// `(pid, tid, ts)` anchors in causal order — the arrows tracing one
    /// transaction across node/engine tracks. Flows with fewer than two
    /// anchors have nothing to link and are dropped.
    pub fn add_flow(&mut self, id: u64, name: impl Into<String>, points: Vec<(u64, u64, Cycle)>) {
        if points.len() < 2 {
            return;
        }
        self.flows.push(Flow {
            id,
            name: name.into(),
            points,
        });
    }

    /// Sets one entry of the document's top-level `otherData` metadata
    /// object (e.g. the trace ring's dropped-event count).
    pub fn set_other_data(&mut self, key: impl Into<String>, value: Json) {
        self.other_data.insert(key.into(), value);
    }

    /// Number of span events added so far.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of flow chains added so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Renders the trace as a `trace_event` JSON document: metadata
    /// first, then spans sorted by `(pid, tid, ts, dur)`, then counters
    /// sorted by `(pid, name, ts)`. The sort is stable, so insertion
    /// order breaks remaining ties deterministically.
    pub fn into_json(self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        for (pid, name) in &self.process_names {
            events.push(Json::obj([
                ("ph", Json::Str("M".into())),
                ("pid", Json::UInt(*pid)),
                ("name", Json::Str("process_name".into())),
                ("args", Json::obj([("name", Json::Str(name.clone()))])),
            ]));
        }
        for ((pid, tid), name) in &self.thread_names {
            events.push(Json::obj([
                ("ph", Json::Str("M".into())),
                ("pid", Json::UInt(*pid)),
                ("tid", Json::UInt(*tid)),
                ("name", Json::Str("thread_name".into())),
                ("args", Json::obj([("name", Json::Str(name.clone()))])),
            ]));
        }
        let mut spans = self.spans;
        spans.sort_by_key(|a| (a.pid, a.tid, a.ts, a.dur));
        for s in spans {
            let mut obj = vec![
                ("ph", Json::Str("X".into())),
                ("pid", Json::UInt(s.pid)),
                ("tid", Json::UInt(s.tid)),
                ("name", Json::Str(s.name)),
                ("cat", Json::Str(s.cat.into())),
                ("ts", Json::Num(cycles_to_us(s.ts))),
                ("dur", Json::Num(cycles_to_us(s.dur))),
            ];
            if !s.args.is_empty() {
                obj.push(("args", Json::obj(s.args)));
            }
            events.push(Json::obj(obj));
        }
        let mut flows = self.flows;
        flows.sort_by(|a, b| a.id.cmp(&b.id).then_with(|| a.name.cmp(&b.name)));
        for f in flows {
            let last = f.points.len() - 1;
            for (i, (pid, tid, ts)) in f.points.into_iter().enumerate() {
                let ph = match i {
                    0 => "s",
                    _ if i == last => "f",
                    _ => "t",
                };
                let mut obj = vec![
                    ("ph", Json::Str(ph.into())),
                    ("pid", Json::UInt(pid)),
                    ("tid", Json::UInt(tid)),
                    ("name", Json::Str(f.name.clone())),
                    ("cat", Json::Str("txn".into())),
                    ("id", Json::UInt(f.id)),
                    ("ts", Json::Num(cycles_to_us(ts))),
                ];
                if ph == "f" {
                    // Bind the terminating arrow to the enclosing slice.
                    obj.push(("bp", Json::Str("e".into())));
                }
                events.push(Json::obj(obj));
            }
        }
        let mut counters = self.counters;
        counters
            .sort_by(|a, b| (a.pid, a.name.as_str(), a.ts).cmp(&(b.pid, b.name.as_str(), b.ts)));
        for c in counters {
            events.push(Json::obj([
                ("ph", Json::Str("C".into())),
                ("pid", Json::UInt(c.pid)),
                ("name", Json::Str(c.name)),
                ("ts", Json::Num(cycles_to_us(c.ts))),
                (
                    "args",
                    Json::Obj(
                        c.values
                            .into_iter()
                            .map(|(k, v)| (k, Json::Num(v)))
                            .collect(),
                    ),
                ),
            ]));
        }
        let mut doc = vec![
            ("displayTimeUnit", Json::Str("ns".into())),
            ("traceEvents", Json::Arr(events)),
        ];
        if !self.other_data.is_empty() {
            doc.push((
                "otherData",
                Json::Obj(self.other_data.into_iter().collect()),
            ));
        }
        Json::obj(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_to_us_conversion() {
        assert_eq!(cycles_to_us(0), 0.0);
        assert_eq!(cycles_to_us(200), 1.0); // 200 cycles = 1000 ns = 1 µs
        assert_eq!(cycles_to_us(26), 0.13);
    }

    fn events(j: &Json) -> Vec<Json> {
        match j.get("traceEvents").unwrap() {
            Json::Arr(v) => v.clone(),
            _ => panic!("traceEvents must be an array"),
        }
    }

    #[test]
    fn spans_sorted_monotone_per_track() {
        let mut t = ChromeTrace::new();
        // Inserted out of order across two tracks.
        t.add_span((0, 1), "b", "handler", 500, 10, vec![]);
        t.add_span((0, 0), "a", "handler", 300, 10, vec![]);
        t.add_span((0, 1), "c", "handler", 100, 10, vec![]);
        let evs = events(&t.into_json());
        let xs: Vec<(u64, u64, f64)> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| {
                (
                    e.get("pid").unwrap().as_u64().unwrap(),
                    e.get("tid").unwrap().as_u64().unwrap(),
                    e.get("ts").unwrap().as_f64().unwrap(),
                )
            })
            .collect();
        assert_eq!(xs.len(), 3);
        for w in xs.windows(2) {
            assert!(w[0].0 < w[1].0 || w[0].1 < w[1].1 || w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn metadata_and_counters_render() {
        let mut t = ChromeTrace::new();
        t.set_process_name(2, "node2");
        t.set_thread_name(2, 0, "engine0.PE");
        t.add_counter(2, "queue_depth", 100, vec![("cc".into(), 3.0)]);
        let j = t.into_json();
        let evs = events(&j);
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("M"));
        let c = evs.last().unwrap();
        assert_eq!(c.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            c.get("args").unwrap().get("cc").unwrap().as_f64(),
            Some(3.0)
        );
        // The document parses back as JSON.
        ccn_harness::json::parse(&j.to_string()).unwrap();
    }

    #[test]
    fn flows_render_start_step_finish() {
        let mut t = ChromeTrace::new();
        t.add_flow(7, "P0#3", vec![(0, 0, 10), (1, 0, 40), (0, 0, 90)]);
        // Too short to link anything: dropped.
        t.add_flow(8, "P1#0", vec![(0, 0, 5)]);
        assert_eq!(t.flow_count(), 1);
        let evs = events(&t.into_json());
        let phs: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phs, ["s", "t", "f"]);
        let finish = evs.last().unwrap();
        assert_eq!(finish.get("bp").and_then(Json::as_str), Some("e"));
        assert_eq!(finish.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(finish.get("cat").and_then(Json::as_str), Some("txn"));
    }

    #[test]
    fn other_data_appears_only_when_set() {
        let bare = ChromeTrace::new().into_json();
        assert!(bare.get("otherData").is_none());
        let mut t = ChromeTrace::new();
        t.set_other_data("trace_dropped", Json::UInt(12));
        let j = t.into_json();
        assert_eq!(
            j.get("otherData")
                .unwrap()
                .get("trace_dropped")
                .unwrap()
                .as_u64(),
            Some(12)
        );
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut t = ChromeTrace::new();
            t.set_process_name(0, "node0");
            t.add_span(
                (0, 0),
                "read",
                "handler",
                10,
                20,
                vec![("line", Json::UInt(64))],
            );
            t.add_span((0, 0), "write", "handler", 40, 18, vec![]);
            t.into_json().render_pretty()
        };
        assert_eq!(build(), build());
    }
}
