//! Cycle-driven sampling of the component stats spine.
//!
//! A [`Sampler`] is armed with a cadence; the simulator's event loop asks
//! it [`Sampler::due_at`] before dispatching each event and, when a
//! sample is due, hands it a fresh [`ccn_sim::ComponentStats`]
//! snapshot. The sampler
//! flattens the tree into `path/metric` series and appends one column to
//! its [`Timeline`].
//!
//! Samples are attributed to the *due* cycle, not the event that
//! triggered them: the state observed is exactly the state after every
//! event strictly before the first event at or past the due cycle, which
//! is a deterministic function of the simulation alone — two runs with
//! the same seed produce bit-identical timelines regardless of wall
//! clock, worker count, or host.

use ccn_harness::Json;
use ccn_sim::{ComponentStats, Cycle};

/// Whether a series tracks a monotonic counter or a point-in-time gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic `u64` event counts (arrivals, occupancy cycles, …).
    Counter,
    /// Derived `f64` point-in-time values (utilizations, mean delays).
    Gauge,
}

impl SeriesKind {
    fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

#[derive(Debug, Clone)]
enum Values {
    Counter(Vec<u64>),
    Gauge(Vec<f64>),
}

#[derive(Debug, Clone)]
struct Series {
    /// Slash-joined component path, e.g. `"machine/node0/cc/engine0.LPE"`.
    path: String,
    metric: &'static str,
    values: Values,
}

/// A columnar buffer of per-component time series: one shared time axis
/// plus one value column per `(component path, metric)` pair.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    times: Vec<Cycle>,
    series: Vec<Series>,
}

impl Timeline {
    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The sample cycles, ascending.
    pub fn times(&self) -> &[Cycle] {
        &self.times
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// The counter series for `metric` on the component at `path`, if
    /// such a series was sampled.
    pub fn counter_series(&self, path: &str, metric: &str) -> Option<&[u64]> {
        self.series
            .iter()
            .find(|s| s.path == path && s.metric == metric)
            .and_then(|s| match &s.values {
                Values::Counter(v) => Some(v.as_slice()),
                Values::Gauge(_) => None,
            })
    }

    /// The gauge series for `metric` on the component at `path`.
    pub fn gauge_series(&self, path: &str, metric: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|s| s.path == path && s.metric == metric)
            .and_then(|s| match &s.values {
                Values::Gauge(v) => Some(v.as_slice()),
                Values::Counter(_) => None,
            })
    }

    /// Iterates over `(path, metric, kind)` for every series, in the
    /// deterministic depth-first spine order.
    pub fn series_keys(&self) -> impl Iterator<Item = (&str, &str, SeriesKind)> {
        self.series.iter().map(|s| {
            let kind = match s.values {
                Values::Counter(_) => SeriesKind::Counter,
                Values::Gauge(_) => SeriesKind::Gauge,
            };
            (s.path.as_str(), s.metric, kind)
        })
    }

    /// Serializes the timeline as a deterministic JSON object: the time
    /// axis plus one entry per series, in spine order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "times",
                Json::Arr(self.times.iter().map(|&t| Json::UInt(t)).collect()),
            ),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            let (kind, values) = match &s.values {
                                Values::Counter(v) => (
                                    SeriesKind::Counter,
                                    v.iter().map(|&x| Json::UInt(x)).collect(),
                                ),
                                Values::Gauge(v) => {
                                    (SeriesKind::Gauge, v.iter().map(|&x| Json::Num(x)).collect())
                                }
                            };
                            Json::obj([
                                ("path", Json::Str(s.path.clone())),
                                ("metric", Json::Str(s.metric.to_string())),
                                ("kind", Json::Str(kind.label().to_string())),
                                ("values", Json::Arr(values)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Appends one sample column taken from `snapshot` at cycle `at`.
    fn push_sample(&mut self, at: Cycle, snapshot: &ComponentStats) {
        if self.times.is_empty() {
            self.init_series(snapshot);
        }
        self.times.push(at);
        let mut idx = 0usize;
        append_values(snapshot, String::new(), &mut self.series, &mut idx);
        assert_eq!(
            idx,
            self.series.len(),
            "component tree shape changed between samples"
        );
    }

    /// Fixes the series set from the first snapshot's tree shape.
    fn init_series(&mut self, snapshot: &ComponentStats) {
        fn walk(node: &ComponentStats, prefix: &str, out: &mut Vec<Series>) {
            let path = join(prefix, &node.name);
            for &(metric, _) in &node.counters {
                out.push(Series {
                    path: path.clone(),
                    metric,
                    values: Values::Counter(Vec::new()),
                });
            }
            for &(metric, _) in &node.gauges {
                out.push(Series {
                    path: path.clone(),
                    metric,
                    values: Values::Gauge(Vec::new()),
                });
            }
            for child in &node.children {
                walk(child, &path, out);
            }
        }
        walk(snapshot, "", &mut self.series);
    }
}

fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}/{name}")
    }
}

/// Walks `node` in the same order as `init_series`, appending one value
/// to each series. The spine's tree shape is static over a run, so the
/// walk order is the series order.
fn append_values(node: &ComponentStats, prefix: String, series: &mut [Series], idx: &mut usize) {
    let path = join(&prefix, &node.name);
    for &(metric, value) in &node.counters {
        let s = &mut series[*idx];
        debug_assert!(s.path == path && s.metric == metric);
        match &mut s.values {
            Values::Counter(v) => v.push(value),
            Values::Gauge(_) => unreachable!("series kind fixed at first sample"),
        }
        *idx += 1;
    }
    for &(metric, value) in &node.gauges {
        let s = &mut series[*idx];
        debug_assert!(s.path == path && s.metric == metric);
        match &mut s.values {
            Values::Gauge(v) => v.push(value),
            Values::Counter(_) => unreachable!("series kind fixed at first sample"),
        }
        *idx += 1;
    }
    for child in &node.children {
        append_values(child, path.clone(), series, idx);
    }
}

/// Drives periodic sampling of the stats spine during the measured phase.
///
/// ```
/// use ccn_obs::Sampler;
/// use ccn_sim::ComponentStats;
///
/// let mut sampler = Sampler::new(100);
/// let snap = ComponentStats::named("m").counter("events", 3);
/// // Event loop: before dispatching an event at cycle 250, take the
/// // samples that came due at cycles 100 and 200.
/// while let Some(due) = sampler.due_at(250) {
///     sampler.record(due, &snap);
/// }
/// assert_eq!(sampler.timeline().times(), &[100, 200]);
/// ```
#[derive(Debug, Clone)]
pub struct Sampler {
    every: Cycle,
    next_due: Cycle,
    timeline: Timeline,
}

impl Sampler {
    /// Creates a sampler taking one sample every `every` cycles, starting
    /// at cycle `every`.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: Cycle) -> Self {
        assert!(every > 0, "sampling cadence must be positive");
        Sampler {
            every,
            next_due: every,
            timeline: Timeline::default(),
        }
    }

    /// The sampling cadence in cycles.
    pub fn cadence(&self) -> Cycle {
        self.every
    }

    /// Re-arms at the start of the measured phase: discards warm-up
    /// samples and schedules the next sample `every` cycles after `now`.
    pub fn arm(&mut self, now: Cycle) {
        self.next_due = now + self.every;
        self.timeline = Timeline::default();
    }

    /// If a sample is due at or before `now`, returns its cycle (the
    /// caller follows up with [`record`](Sampler::record)).
    pub fn due_at(&self, now: Cycle) -> Option<Cycle> {
        (self.next_due <= now).then_some(self.next_due)
    }

    /// The cycle of the next scheduled sample. Parallel execution caps
    /// its time windows at this cycle so samples are taken at the exact
    /// merged machine state the sequential schedule would observe.
    pub fn next_due(&self) -> Cycle {
        self.next_due
    }

    /// Records one sample at cycle `at` and schedules the next.
    pub fn record(&mut self, at: Cycle, snapshot: &ComponentStats) {
        self.timeline.push_sample(at, snapshot);
        self.next_due = at + self.every;
    }

    /// The accumulated timeline.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(x: u64) -> ComponentStats {
        ComponentStats::named("machine").counter("events", x).child(
            ComponentStats::named("node0")
                .counter("arrivals", x * 2)
                .gauge("util", x as f64 / 10.0)
                .child(ComponentStats::named("cc").counter("handled", x + 1)),
        )
    }

    #[test]
    fn sampler_cadence_and_catch_up() {
        let mut s = Sampler::new(50);
        // Nothing due before the first period elapses.
        assert_eq!(s.due_at(49), None);
        // An event at cycle 175 owes three samples: 50, 100, 150.
        let mut taken = Vec::new();
        while let Some(due) = s.due_at(175) {
            s.record(due, &snap(due));
            taken.push(due);
        }
        assert_eq!(taken, vec![50, 100, 150]);
        assert_eq!(s.timeline().times(), &[50, 100, 150]);
    }

    #[test]
    fn arm_discards_warmup_samples() {
        let mut s = Sampler::new(10);
        s.record(10, &snap(1));
        assert_eq!(s.timeline().len(), 1);
        s.arm(100);
        assert_eq!(s.timeline().len(), 0);
        assert_eq!(s.due_at(105), None);
        assert_eq!(s.due_at(110), Some(110));
    }

    #[test]
    fn series_are_columnar_and_typed() {
        let mut s = Sampler::new(10);
        s.record(10, &snap(1));
        s.record(20, &snap(2));
        let tl = s.timeline();
        assert_eq!(tl.series_count(), 4);
        assert_eq!(tl.counter_series("machine", "events"), Some(&[1u64, 2][..]));
        assert_eq!(
            tl.counter_series("machine/node0/cc", "handled"),
            Some(&[2u64, 3][..])
        );
        let util = tl.gauge_series("machine/node0", "util").unwrap();
        assert_eq!(util.len(), 2);
        // Kind mismatch and unknown paths return None.
        assert!(tl.gauge_series("machine", "events").is_none());
        assert!(tl.counter_series("machine/nodeX", "events").is_none());
    }

    #[test]
    fn timeline_json_shape() {
        let mut s = Sampler::new(10);
        s.record(10, &snap(3));
        let j = s.timeline().to_json();
        let times = match j.get("times").unwrap() {
            Json::Arr(v) => v.len(),
            _ => panic!("times must be an array"),
        };
        assert_eq!(times, 1);
        let series = match j.get("series").unwrap() {
            Json::Arr(v) => v,
            _ => panic!("series must be an array"),
        };
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].get("path").unwrap().as_str(), Some("machine"));
        assert_eq!(series[0].get("kind").unwrap().as_str(), Some("counter"));
        // Determinism: the rendered text is stable.
        assert_eq!(j.to_string(), s.timeline().to_json().to_string());
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn changed_tree_shape_is_rejected() {
        let mut s = Sampler::new(10);
        s.record(10, &snap(1));
        s.record(20, &ComponentStats::named("machine").counter("events", 1));
    }
}
