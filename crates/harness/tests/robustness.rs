//! Robustness of the checkpoint format and the worker pool against the
//! failure modes an interrupted or crashing sweep actually produces:
//! zero-byte files, torn final lines, garbage mid-file, duplicate
//! records for one job id, and panicking jobs.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ccn_harness::{checkpoint, CheckpointWriter, Job, Json, PoolConfig};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ccn-harness-robustness-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn zero_byte_file_is_an_empty_checkpoint_and_gets_a_meta_line() {
    let path = temp_path("zero.jsonl");
    std::fs::write(&path, b"").unwrap();
    // Loading an empty file yields no entries and no meta.
    let cp = checkpoint::load(&path).unwrap();
    assert_eq!(cp.completed_count(), 0);
    assert!(cp.meta.is_none());
    // Opening a writer on it treats it as new: the meta line is written.
    {
        let mut w = CheckpointWriter::open(&path, vec![("target", Json::Str("t".into()))]).unwrap();
        w.record_ok("a", 1, 1, Json::UInt(1)).unwrap();
    }
    let cp = checkpoint::load(&path).unwrap();
    let meta = cp.meta.as_ref().unwrap();
    assert_eq!(meta.get("target").unwrap().as_str(), Some("t"));
    assert!(cp.completed("a").is_some());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_final_line_loses_only_itself() {
    let path = temp_path("torn.jsonl");
    {
        let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
        w.record_ok("kept", 1, 1, Json::UInt(7)).unwrap();
    }
    // Crash mid-append: a record torn without its trailing newline.
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(b"{\"kind\":\"job\",\"id\":\"torn\",\"status\":\"o")
        .unwrap();
    drop(f);
    let cp = checkpoint::load(&path).unwrap();
    assert_eq!(cp.completed_count(), 1);
    assert!(cp.completed("kept").is_some());
    assert!(!cp.entries.contains_key("torn"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_after_a_torn_line_does_not_corrupt_the_next_record() {
    let path = temp_path("torn-resume.jsonl");
    {
        let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
        w.record_ok("old", 1, 1, Json::UInt(1)).unwrap();
    }
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(b"{\"kind\":\"job\",\"id\":\"to").unwrap();
    drop(f);
    // A resumed sweep reopens the writer and appends new completions. The
    // writer must terminate the torn fragment first, or the next record
    // would merge into it and be lost on the following load.
    {
        let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
        w.record_ok("new", 1, 1, Json::UInt(2)).unwrap();
    }
    let cp = checkpoint::load(&path).unwrap();
    assert!(cp.completed("old").is_some());
    assert!(
        cp.completed("new").is_some(),
        "record appended after a torn line was lost"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn garbage_lines_are_skipped_without_poisoning_neighbors() {
    let path = temp_path("garbage.jsonl");
    {
        let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
        w.record_ok("before", 1, 1, Json::Null).unwrap();
    }
    let mut f = OpenOptions::new().append(true).open(&path).unwrap();
    f.write_all(b"not json at all\n{\"kind\":\"job\"\n\n")
        .unwrap();
    drop(f);
    {
        let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
        w.record_ok("after", 1, 1, Json::Null).unwrap();
    }
    let cp = checkpoint::load(&path).unwrap();
    assert!(cp.completed("before").is_some());
    assert!(cp.completed("after").is_some());
    assert_eq!(cp.completed_count(), 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn duplicate_job_ids_resolve_to_the_latest_line() {
    let path = temp_path("dup.jsonl");
    {
        let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
        w.record_ok("j", 1, 1, Json::UInt(1)).unwrap();
        w.record_failed("j", 2, 1, "flaked").unwrap();
        w.record_ok("j", 1, 1, Json::UInt(3)).unwrap();
        w.record_ok("other", 1, 1, Json::UInt(9)).unwrap();
    }
    let cp = checkpoint::load(&path).unwrap();
    // Latest line wins: the final ok with payload 3, not the first ok and
    // not the intervening failure.
    assert_eq!(cp.completed("j"), Some(&Json::UInt(3)));
    assert_eq!(cp.completed("other"), Some(&Json::UInt(9)));
    assert_eq!(cp.completed_count(), 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pool_isolates_panics_and_retries_within_budget() {
    let attempts = AtomicUsize::new(0);
    let jobs: Vec<Job<u32>> = (0..6).map(|i| Job::new(format!("job/{i}"), i)).collect();
    let cfg = PoolConfig {
        workers: 3,
        max_attempts: 2,
        progress: false,
    };
    let result = ccn_harness::run_jobs(
        &jobs,
        &cfg,
        |job| {
            // Job 2 panics on its first attempt only; job 4 always panics.
            if job.input == 2 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            if job.input == 4 {
                panic!("permanent");
            }
            job.input * 10
        },
        |_, _| {},
    );
    assert_eq!(result.outcomes.len(), 6);
    // Outcomes come back in input order no matter the interleaving.
    for (i, outcome) in result.outcomes.iter().enumerate() {
        if i == 4 {
            assert!(outcome.ok().is_none(), "job 4 must exhaust its budget");
            assert_eq!(outcome.attempts, 2);
        } else {
            assert_eq!(outcome.ok(), Some(&(i as u32 * 10)), "job {i}");
        }
    }
    assert!(!result.all_ok());
    assert_eq!(result.summary.failed.len(), 1);
}
