//! Live progress/ETA lines and the end-of-run sweep summary.
//!
//! All telemetry goes to **stderr**: stdout carries the result tables,
//! which must stay byte-identical across worker counts, while the
//! progress stream is timing-dependent by nature.

use std::time::{Duration, Instant};

use ccn_sim::stats::Accumulator;

use crate::pool::{JobOutcome, JobStatus};

/// Estimated seconds remaining given progress so far (simple linear
/// extrapolation; good enough for sweeps of similar-cost jobs).
pub fn eta_secs(done: usize, total: usize, elapsed: Duration) -> f64 {
    if done == 0 || total <= done {
        return 0.0;
    }
    elapsed.as_secs_f64() / done as f64 * (total - done) as f64
}

/// Formats a duration as compact `1m23s` / `4.2s` / `870ms`.
pub fn human_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        format!("{}m{:02}s", (secs / 60.0) as u64, (secs % 60.0) as u64)
    } else if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// Per-sweep progress state, updated under the pool's completion lock.
pub(crate) struct ProgressMeter {
    total: usize,
    done: usize,
    enabled: bool,
    started: Instant,
}

impl ProgressMeter {
    pub(crate) fn new(total: usize, enabled: bool, started: Instant) -> Self {
        ProgressMeter {
            total,
            done: 0,
            enabled,
            started,
        }
    }

    pub(crate) fn note<O>(&mut self, id: &str, outcome: &JobOutcome<O>) {
        self.done += 1;
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed();
        let eta = eta_secs(self.done, self.total, elapsed);
        let verdict = match &outcome.status {
            JobStatus::Ok(_) if outcome.attempts > 1 => {
                format!("ok after {} attempts", outcome.attempts)
            }
            JobStatus::Ok(_) => "ok".to_string(),
            JobStatus::Failed(_) => format!("FAILED after {} attempts", outcome.attempts),
        };
        eprintln!(
            "[harness] {}/{} ({:.0}%) elapsed {} eta {} | {} {} in {}",
            self.done,
            self.total,
            self.done as f64 / self.total.max(1) as f64 * 100.0,
            human_duration(elapsed),
            human_duration(Duration::from_secs_f64(eta)),
            id,
            verdict,
            human_duration(Duration::from_millis(outcome.wall_ms)),
        );
    }
}

/// Aggregate telemetry for one sweep.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Jobs in the sweep.
    pub total: usize,
    /// Jobs that produced a value.
    pub succeeded: usize,
    /// `(job id, panic message)` for jobs that exhausted their attempts.
    pub failed: Vec<(String, String)>,
    /// Extra attempts beyond the first, summed over all jobs.
    pub retries: u64,
    /// Per-job wall time statistics, in milliseconds.
    pub wall_ms: Accumulator,
    /// End-to-end sweep time.
    pub elapsed: Duration,
    /// The slowest jobs, `(id, wall ms)`, slowest first (up to 5).
    pub slowest: Vec<(String, u64)>,
}

impl SweepSummary {
    /// Builds the summary from per-job outcomes (ids and outcomes zip in
    /// input order).
    pub fn from_outcomes<'a, O>(
        ids: impl Iterator<Item = &'a str>,
        outcomes: &[JobOutcome<O>],
        elapsed: Duration,
    ) -> Self {
        let mut wall_ms = Accumulator::new();
        let mut failed = Vec::new();
        let mut retries = 0u64;
        let mut timed: Vec<(String, u64)> = Vec::with_capacity(outcomes.len());
        for (id, o) in ids.zip(outcomes) {
            wall_ms.record(o.wall_ms as f64);
            retries += u64::from(o.attempts.saturating_sub(1));
            timed.push((id.to_string(), o.wall_ms));
            if let JobStatus::Failed(msg) = &o.status {
                failed.push((id.to_string(), msg.clone()));
            }
        }
        timed.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        timed.truncate(5);
        SweepSummary {
            total: outcomes.len(),
            succeeded: outcomes.len() - failed.len(),
            failed,
            retries,
            wall_ms,
            elapsed,
            slowest: timed,
        }
    }

    /// Renders the end-of-run report (multi-line, for stderr).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "[harness] sweep done: {}/{} jobs ok, {} failed, {} retries, {} wall",
            self.succeeded,
            self.total,
            self.failed.len(),
            self.retries,
            human_duration(self.elapsed),
        );
        if self.wall_ms.count() > 0 {
            let _ = writeln!(
                out,
                "[harness] per-job wall: mean {} min {} max {}",
                human_duration(Duration::from_millis(self.wall_ms.mean() as u64)),
                human_duration(Duration::from_millis(
                    self.wall_ms.min().unwrap_or(0.0) as u64
                )),
                human_duration(Duration::from_millis(
                    self.wall_ms.max().unwrap_or(0.0) as u64
                )),
            );
        }
        if !self.slowest.is_empty() {
            let _ = writeln!(out, "[harness] slowest jobs:");
            for (id, ms) in &self.slowest {
                let _ = writeln!(
                    out,
                    "[harness]   {} {}",
                    human_duration(Duration::from_millis(*ms)),
                    id
                );
            }
        }
        for (id, msg) in &self.failed {
            let _ = writeln!(out, "[harness] FAILED {id}: {msg}");
        }
        out
    }

    /// Merges another sweep's summary into this one (used when a run
    /// spans several targets).
    pub fn merge(&mut self, other: &SweepSummary) {
        self.total += other.total;
        self.succeeded += other.succeeded;
        self.failed.extend(other.failed.iter().cloned());
        self.retries += other.retries;
        self.wall_ms.merge(&other.wall_ms);
        self.elapsed += other.elapsed;
        let mut slowest = std::mem::take(&mut self.slowest);
        slowest.extend(other.slowest.iter().cloned());
        slowest.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        slowest.truncate(5);
        self.slowest = slowest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_extrapolates_linearly() {
        assert_eq!(eta_secs(0, 10, Duration::from_secs(5)), 0.0);
        assert_eq!(eta_secs(10, 10, Duration::from_secs(5)), 0.0);
        let eta = eta_secs(2, 10, Duration::from_secs(4));
        assert!((eta - 16.0).abs() < 1e-9);
    }

    #[test]
    fn durations_humanize() {
        assert_eq!(human_duration(Duration::from_millis(870)), "870ms");
        assert_eq!(human_duration(Duration::from_secs_f64(4.25)), "4.2s");
        assert_eq!(human_duration(Duration::from_secs(83)), "1m23s");
    }

    #[test]
    fn summary_aggregates_and_merges() {
        use crate::pool::JobStatus;
        let outcomes = vec![
            JobOutcome {
                attempts: 1,
                wall_ms: 100,
                status: JobStatus::Ok(1u8),
            },
            JobOutcome {
                attempts: 3,
                wall_ms: 300,
                status: JobStatus::Failed("boom".into()),
            },
        ];
        let mut a =
            SweepSummary::from_outcomes(["a", "b"].into_iter(), &outcomes, Duration::from_secs(1));
        assert_eq!(a.total, 2);
        assert_eq!(a.succeeded, 1);
        assert_eq!(a.retries, 2);
        assert_eq!(a.slowest[0], ("b".to_string(), 300));
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.total, 4);
        assert_eq!(a.retries, 4);
        assert_eq!(a.wall_ms.count(), 4);
        assert_eq!(a.failed.len(), 2);
        let rendered = a.render();
        assert!(rendered.contains("sweep done"));
        assert!(rendered.contains("FAILED b: boom"));
    }
}
