//! The panic-isolated worker pool.
//!
//! Jobs are pulled from a shared index counter by `workers` scoped
//! threads. Each job runs under [`std::panic::catch_unwind`]: a diverging
//! or asserting simulation takes down only its own attempt, is retried up
//! to the configured attempt budget, and is then reported failed while the
//! rest of the sweep keeps running.
//!
//! Results come back indexed by the job's position in the input slice, so
//! the caller sees the same ordering no matter how many workers ran or
//! how execution interleaved — the foundation of the harness's
//! determinism guarantee.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::progress::{ProgressMeter, SweepSummary};
use crate::{Job, PoolConfig};

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus<O> {
    /// The worker closure returned a value.
    Ok(O),
    /// Every attempt panicked; the payload of the last panic.
    Failed(String),
}

/// One job's execution record.
#[derive(Debug, Clone)]
pub struct JobOutcome<O> {
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Total wall time across all attempts, in milliseconds.
    pub wall_ms: u64,
    /// The final status.
    pub status: JobStatus<O>,
}

impl<O> JobOutcome<O> {
    /// The success value, if any.
    pub fn ok(&self) -> Option<&O> {
        match &self.status {
            JobStatus::Ok(v) => Some(v),
            JobStatus::Failed(_) => None,
        }
    }
}

/// The result of a sweep: per-job outcomes (input order) plus telemetry.
#[derive(Debug)]
pub struct SweepResult<O> {
    /// One outcome per input job, in input order.
    pub outcomes: Vec<JobOutcome<O>>,
    /// Aggregate telemetry for the end-of-run report.
    pub summary: SweepSummary,
}

impl<O> SweepResult<O> {
    /// True when every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.summary.failed.is_empty()
    }
}

/// Runs `jobs` on a worker pool, calling `work` for each.
///
/// `on_done` is invoked exactly once per job, serialized under a lock, in
/// *completion* order — it is where callers append checkpoints. The
/// returned outcomes are in *input* order regardless.
pub fn run_jobs<I, O, F, C>(
    jobs: &[Job<I>],
    cfg: &PoolConfig,
    work: F,
    mut on_done: C,
) -> SweepResult<O>
where
    I: Sync,
    O: Send,
    F: Fn(&Job<I>) -> O + Sync,
    C: FnMut(&Job<I>, &JobOutcome<O>) + Send,
{
    let started = Instant::now();
    let workers = cfg.workers.max(1).min(jobs.len().max(1));
    let max_attempts = cfg.max_attempts.max(1);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<JobOutcome<O>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let meter = Mutex::new(ProgressMeter::new(jobs.len(), cfg.progress, started));
    // `on_done` runs under the same lock as the meter so checkpoint lines
    // and progress output interleave sanely.
    let sink = Mutex::new(&mut on_done);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= jobs.len() {
                    break;
                }
                let job = &jobs[index];
                let outcome = run_with_retry(job, max_attempts, &work);
                {
                    let mut sink = sink.lock().expect("completion sink lock");
                    meter.lock().expect("progress lock").note(&job.id, &outcome);
                    sink(job, &outcome);
                }
                slots.lock().expect("result slots lock")[index] = Some(outcome);
            });
        }
    });

    let outcomes: Vec<JobOutcome<O>> = slots
        .into_inner()
        .expect("result slots lock")
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed by a worker"))
        .collect();
    let summary = SweepSummary::from_outcomes(
        jobs.iter().map(|j| j.id.as_str()),
        &outcomes,
        started.elapsed(),
    );
    SweepResult { outcomes, summary }
}

fn run_with_retry<I, O, F>(job: &Job<I>, max_attempts: u32, work: &F) -> JobOutcome<O>
where
    F: Fn(&Job<I>) -> O,
{
    let started = Instant::now();
    let mut last_panic = String::new();
    for attempt in 1..=max_attempts {
        match catch_unwind(AssertUnwindSafe(|| work(job))) {
            Ok(value) => {
                return JobOutcome {
                    attempts: attempt,
                    wall_ms: started.elapsed().as_millis() as u64,
                    status: JobStatus::Ok(value),
                }
            }
            Err(payload) => last_panic = panic_message(payload.as_ref()),
        }
    }
    JobOutcome {
        attempts: max_attempts,
        wall_ms: started.elapsed().as_millis() as u64,
        status: JobStatus::Failed(last_panic),
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn quiet(workers: usize, max_attempts: u32) -> PoolConfig {
        PoolConfig {
            workers,
            max_attempts,
            progress: false,
        }
    }

    fn jobs(n: u64) -> Vec<Job<u64>> {
        (0..n).map(|i| Job::new(format!("job/{i}"), i)).collect()
    }

    #[test]
    fn outcomes_preserve_input_order_across_worker_counts() {
        let js = jobs(40);
        let run = |workers| {
            run_jobs(&js, &quiet(workers, 1), |job| job.input * 3, |_, _| {})
                .outcomes
                .into_iter()
                .map(|o| *o.ok().unwrap())
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        assert_eq!(serial, (0..40).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(serial, run(8));
    }

    #[test]
    fn panicking_job_is_retried_then_fails_without_aborting_the_sweep() {
        let js = jobs(10);
        let attempts_on_job_3 = AtomicU32::new(0);
        let result = run_jobs(
            &js,
            &quiet(4, 3),
            |job| {
                if job.input == 3 {
                    attempts_on_job_3.fetch_add(1, Ordering::Relaxed);
                    panic!("injected divergence");
                }
                job.input
            },
            |_, _| {},
        );
        // The poisoned job was retried to its attempt budget…
        assert_eq!(attempts_on_job_3.load(Ordering::Relaxed), 3);
        let bad = &result.outcomes[3];
        assert_eq!(bad.attempts, 3);
        assert_eq!(
            bad.status,
            JobStatus::Failed("injected divergence".to_string())
        );
        // …and every other job still completed.
        for (i, o) in result.outcomes.iter().enumerate() {
            if i != 3 {
                assert_eq!(o.ok(), Some(&(i as u64)), "job {i}");
            }
        }
        assert!(!result.all_ok());
        assert_eq!(result.summary.failed.len(), 1);
        assert_eq!(result.summary.succeeded, 9);
    }

    #[test]
    fn flaky_job_succeeds_on_retry() {
        let js = jobs(1);
        let tries = AtomicU32::new(0);
        let result = run_jobs(
            &js,
            &quiet(1, 2),
            |job| {
                if tries.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("first attempt flake");
                }
                job.input + 100
            },
            |_, _| {},
        );
        assert_eq!(result.outcomes[0].ok(), Some(&100));
        assert_eq!(result.outcomes[0].attempts, 2);
        assert_eq!(result.summary.retries, 1);
        assert!(result.all_ok());
    }

    #[test]
    fn on_done_fires_once_per_job() {
        let js = jobs(25);
        let mut seen = Vec::new();
        run_jobs(
            &js,
            &quiet(6, 1),
            |job| job.input,
            |job, _| {
                seen.push(job.id.clone());
            },
        );
        seen.sort();
        let mut want: Vec<String> = js.iter().map(|j| j.id.clone()).collect();
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn workers_run_jobs_concurrently() {
        // Eight 50 ms jobs on eight workers must overlap: anywhere close
        // to the 400 ms serial time means the pool serialized them.
        let js = jobs(8);
        let started = Instant::now();
        run_jobs(
            &js,
            &quiet(8, 1),
            |_| std::thread::sleep(std::time::Duration::from_millis(50)),
            |_, _| {},
        );
        let elapsed = started.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(200),
            "8 x 50ms jobs on 8 workers took {elapsed:?}"
        );
    }

    #[test]
    fn empty_sweep_is_fine() {
        let result = run_jobs(&[] as &[Job<()>], &quiet(4, 1), |_| 0u8, |_, _| {});
        assert!(result.outcomes.is_empty());
        assert!(result.all_ok());
    }
}
