//! `ccn-harness` — parallel experiment orchestration for the CC-NUMA
//! reproduction.
//!
//! The paper's headline results come from sweeping controller
//! architectures × applications × machine configurations: an
//! embarrassingly parallel grid of deterministic simulations. This crate
//! industrializes that sweep:
//!
//! * **Deterministic jobs** — a [`Job`] couples a stable string id with a
//!   seed derived from that id ([`stable_seed`]), so a job means the same
//!   thing no matter which worker runs it, in which order, in which
//!   process.
//! * **Panic isolation** — [`run_jobs`] executes jobs on a
//!   `std::thread` pool under `catch_unwind` with a bounded attempt
//!   budget: one diverging simulation cannot kill a multi-hour sweep.
//! * **Incremental checkpointing** — the [`checkpoint`] module appends
//!   each completed job as a JSON line and lets a restarted sweep skip
//!   everything already recorded.
//! * **Telemetry** — live progress/ETA lines on stderr and an
//!   end-of-run [`SweepSummary`] (slowest jobs, retries, failures).
//!
//! Determinism contract: per-job results depend only on the job itself,
//! and [`run_jobs`] returns outcomes in input order, so a sweep's
//! assembled output is byte-identical whether it ran on 1 worker or 8 —
//! the property `repro --jobs N` relies on.
//!
//! The crate is std-only (plus the in-tree `ccn-sim` statistics
//! primitives) so the workspace keeps building with no registry access.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod json;
pub mod pool;
pub mod progress;

pub use checkpoint::{Checkpoint, CheckpointEntry, CheckpointWriter};
pub use json::Json;
pub use pool::{run_jobs, JobOutcome, JobStatus, SweepResult};
pub use progress::SweepSummary;

/// One unit of work in a sweep.
#[derive(Debug, Clone)]
pub struct Job<I> {
    /// Stable identifier: names the job in checkpoints and telemetry and
    /// determines its seed. Two jobs with equal ids are the same job.
    pub id: String,
    /// Seed derived from the id — available to workloads that want
    /// per-job reproducible randomness independent of scheduling.
    pub seed: u64,
    /// The experiment-specific payload.
    pub input: I,
}

impl<I> Job<I> {
    /// Creates a job whose seed is [`stable_seed`] of its id.
    pub fn new(id: impl Into<String>, input: I) -> Self {
        let id = id.into();
        let seed = stable_seed(&id);
        Job { id, seed, input }
    }
}

/// Worker-pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (clamped to at least 1 and at most the job count).
    pub workers: usize,
    /// Attempts per job before it is reported failed (minimum 1).
    pub max_attempts: u32,
    /// Emit live progress/ETA lines to stderr.
    pub progress: bool,
}

impl PoolConfig {
    /// One worker, no retries, no progress output: the configuration
    /// whose behavior is easiest to reason about, used as the baseline in
    /// determinism checks.
    pub fn serial() -> Self {
        PoolConfig {
            workers: 1,
            max_attempts: 1,
            progress: false,
        }
    }

    /// `workers` workers with one retry and progress output — the
    /// default for interactive sweeps.
    pub fn parallel(workers: usize) -> Self {
        PoolConfig {
            workers,
            max_attempts: 2,
            progress: true,
        }
    }
}

/// The machine's available parallelism, falling back to 1 when the
/// platform cannot report it.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps a job id to a deterministic 64-bit seed (FNV-1a over the bytes,
/// finished with a SplitMix64 scramble). Stable across processes,
/// platforms, and releases — checkpointed sweeps depend on it.
pub fn stable_seed(id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ccn_sim::SplitMix64::new(hash).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_seed_is_stable_and_id_sensitive() {
        assert_eq!(stable_seed("fig6/ocean/HWC"), stable_seed("fig6/ocean/HWC"));
        assert_ne!(stable_seed("fig6/ocean/HWC"), stable_seed("fig6/ocean/PPC"));
        // Pin a value so accidental algorithm changes show up in review:
        // checkpointed sweeps rely on seeds never moving.
        assert_eq!(
            stable_seed(""),
            ccn_sim::SplitMix64::new(0xcbf2_9ce4_8422_2325).next_u64()
        );
    }

    #[test]
    fn job_carries_its_seed() {
        let job = Job::new("a/b", 7u32);
        assert_eq!(job.seed, stable_seed("a/b"));
        assert_eq!(job.input, 7);
    }

    #[test]
    fn pool_config_presets() {
        assert_eq!(PoolConfig::serial().workers, 1);
        let p = PoolConfig::parallel(8);
        assert_eq!(p.workers, 8);
        assert!(p.max_attempts >= 2);
        assert!(default_workers() >= 1);
    }
}
