//! Incremental JSON-lines checkpointing for sweeps.
//!
//! Every completed job is appended as one JSON object per line and flushed
//! immediately, so an interrupted sweep loses at most the jobs that were
//! in flight. A resumed sweep loads the file, skips every job already
//! recorded as `"ok"`, and re-runs the rest (including jobs recorded as
//! failed — a failure may have been environmental).
//!
//! File layout:
//!
//! ```text
//! {"kind":"meta","schema":1,...sweep identification...}
//! {"kind":"job","id":"<job id>","status":"ok","attempts":1,"wall_ms":812,"data":{...}}
//! {"kind":"job","id":"<job id>","status":"failed","attempts":3,"error":"..."}
//! ```
//!
//! A partially written trailing line (from a crash mid-append) is ignored
//! on load rather than poisoning the whole checkpoint.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::json::{self, Json};

/// Schema version stamped into every checkpoint's meta line.
pub const SCHEMA_VERSION: u64 = 1;

/// One job line loaded from a checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointEntry {
    /// The job's stable identifier.
    pub id: String,
    /// `"ok"` or `"failed"`.
    pub status: String,
    /// Attempts the job took.
    pub attempts: u64,
    /// Wall time of the final attempt, in milliseconds.
    pub wall_ms: u64,
    /// The job's payload (present when `status == "ok"`).
    pub data: Option<Json>,
    /// The failure message (present when `status == "failed"`).
    pub error: Option<String>,
}

/// A loaded checkpoint: the meta line plus the *latest* entry per job id.
#[derive(Debug, Default)]
pub struct Checkpoint {
    /// The meta object, if the file had one.
    pub meta: Option<Json>,
    /// Latest entry per job id (later lines win, so a re-run after a
    /// failure supersedes the failure record).
    pub entries: HashMap<String, CheckpointEntry>,
}

impl Checkpoint {
    /// Returns the recorded payload for `id` if the job completed
    /// successfully.
    pub fn completed(&self, id: &str) -> Option<&Json> {
        self.entries
            .get(id)
            .filter(|e| e.status == "ok")
            .and_then(|e| e.data.as_ref())
    }

    /// Number of successfully recorded jobs.
    pub fn completed_count(&self) -> usize {
        self.entries.values().filter(|e| e.status == "ok").count()
    }
}

/// Loads a checkpoint file. A missing file yields an empty checkpoint;
/// unparseable lines are skipped (the common case being a torn final
/// line after a crash).
pub fn load(path: &Path) -> std::io::Result<Checkpoint> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Checkpoint::default()),
        Err(e) => return Err(e),
    };
    let mut cp = Checkpoint::default();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = json::parse(&line) else {
            continue; // torn or corrupt line
        };
        match value.get("kind").and_then(Json::as_str) {
            Some("meta") => cp.meta = Some(value),
            Some("job") => {
                let Some(id) = value.get("id").and_then(Json::as_str) else {
                    continue;
                };
                let entry = CheckpointEntry {
                    id: id.to_string(),
                    status: value
                        .get("status")
                        .and_then(Json::as_str)
                        .unwrap_or("failed")
                        .to_string(),
                    attempts: value.get("attempts").and_then(Json::as_u64).unwrap_or(0),
                    wall_ms: value.get("wall_ms").and_then(Json::as_u64).unwrap_or(0),
                    data: value.get("data").cloned(),
                    error: value
                        .get("error")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                };
                cp.entries.insert(entry.id.clone(), entry);
            }
            _ => {}
        }
    }
    Ok(cp)
}

/// Appends job records to a checkpoint file, flushing after every line.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Opens `path` for appending, creating parent directories and the
    /// file as needed. If the file is new (or empty), `meta` is written
    /// first with `"kind":"meta"` and the schema version stamped in.
    pub fn open(path: &Path, meta: Vec<(&'static str, Json)>) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut writer = CheckpointWriter {
            file,
            path: path.to_path_buf(),
        };
        let len = writer.file.metadata()?.len();
        if len == 0 {
            let mut obj = vec![
                ("kind", Json::Str("meta".into())),
                ("schema", Json::UInt(SCHEMA_VERSION)),
            ];
            obj.extend(meta);
            writer.append_line(&Json::obj(obj))?;
        } else {
            // A crash mid-append can leave a torn final line with no
            // newline; terminate it now so the next record starts on its
            // own line instead of merging with (and corrupting) the torn
            // fragment.
            let mut probe = File::open(path)?;
            probe.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            probe.read_exact(&mut last)?;
            if last[0] != b'\n' {
                writer.file.write_all(b"\n")?;
                writer.file.flush()?;
            }
        }
        Ok(writer)
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records a successfully completed job.
    pub fn record_ok(
        &mut self,
        id: &str,
        attempts: u32,
        wall_ms: u64,
        data: Json,
    ) -> std::io::Result<()> {
        self.append_line(&Json::obj([
            ("kind", Json::Str("job".into())),
            ("id", Json::Str(id.to_string())),
            ("status", Json::Str("ok".into())),
            ("attempts", Json::UInt(attempts as u64)),
            ("wall_ms", Json::UInt(wall_ms)),
            ("data", data),
        ]))
    }

    /// Records a job that exhausted its retries.
    pub fn record_failed(
        &mut self,
        id: &str,
        attempts: u32,
        wall_ms: u64,
        error: &str,
    ) -> std::io::Result<()> {
        self.append_line(&Json::obj([
            ("kind", Json::Str("job".into())),
            ("id", Json::Str(id.to_string())),
            ("status", Json::Str("failed".into())),
            ("attempts", Json::UInt(attempts as u64)),
            ("wall_ms", Json::UInt(wall_ms)),
            ("error", Json::Str(error.to_string())),
        ]))
    }

    fn append_line(&mut self, value: &Json) -> std::io::Result<()> {
        // One write + flush per record: a crash can tear at most the
        // final line, which `load` tolerates.
        let mut line = value.to_string();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ccn-harness-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn write_then_load_round_trips() {
        let path = temp_path("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut w =
                CheckpointWriter::open(&path, vec![("target", Json::Str("fig6".into()))]).unwrap();
            w.record_ok("a", 1, 10, Json::obj([("cycles", Json::UInt(100))]))
                .unwrap();
            w.record_failed("b", 3, 5, "panicked: boom").unwrap();
        }
        let cp = load(&path).unwrap();
        assert_eq!(
            cp.meta.as_ref().unwrap().get("target").unwrap().as_str(),
            Some("fig6")
        );
        assert_eq!(cp.completed_count(), 1);
        assert_eq!(
            cp.completed("a").unwrap().get("cycles").unwrap().as_u64(),
            Some(100)
        );
        assert!(cp.completed("b").is_none());
        assert_eq!(cp.entries["b"].error.as_deref(), Some("panicked: boom"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn later_lines_supersede_earlier_ones() {
        let path = temp_path("supersede.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
            w.record_failed("j", 3, 5, "flaky").unwrap();
        }
        {
            // Re-opening appends; the meta line is not duplicated.
            let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
            w.record_ok("j", 1, 7, Json::UInt(42)).unwrap();
        }
        let cp = load(&path).unwrap();
        assert_eq!(cp.completed("j"), Some(&Json::UInt(42)));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().filter(|l| l.contains("\"meta\"")).count(),
            1,
            "meta must be written once:\n{text}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let path = temp_path("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::open(&path, vec![]).unwrap();
            w.record_ok("good", 1, 1, Json::Null).unwrap();
        }
        // Simulate a crash mid-append.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"kind\":\"job\",\"id\":\"to").unwrap();
        drop(f);
        let cp = load(&path).unwrap();
        assert_eq!(cp.completed_count(), 1);
        assert!(cp.completed("good").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_empty_checkpoint() {
        let cp = load(Path::new("/nonexistent/ccn-harness/nope.jsonl")).unwrap();
        assert_eq!(cp.completed_count(), 0);
        assert!(cp.meta.is_none());
    }
}
