//! A minimal JSON value, serializer, and parser.
//!
//! The harness checkpoints each completed job as one JSON object per line.
//! The workspace builds with no registry dependencies, so instead of serde
//! this module implements exactly the JSON subset the checkpoint format
//! needs: objects, arrays, strings, booleans, null, and numbers split into
//! unsigned integers (lossless for `u64` cycle counts) and floats
//! (serialized with Rust's shortest round-trip `Display`, so a value
//! survives a write/parse cycle bit-for-bit).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (cycle counts, event counts).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted so serialization is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` (accepting `UInt` and non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (accepting any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(v) => Some(v),
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Multi-line, two-space-indented rendering, for artifacts meant to be
    /// read (and diffed) by humans. Parses back to the same value.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn pretty_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{:1$}", "", (indent + 1) * 2);
                    item.pretty_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{:1$}]", "", indent * 2);
            }
            Json::Obj(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{:1$}{2}: ",
                        "",
                        (indent + 1) * 2,
                        Json::Str(k.clone())
                    );
                    v.pretty_into(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{:1$}}}", "", indent * 2);
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{v}` alone prints `1` for 1.0, which would parse back
                    // as an integer; force a fractional marker.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value from `input`, requiring it to consume the whole
/// string (modulo surrounding whitespace).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Checkpoint strings never contain surrogate
                            // pairs; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_record() {
        let v = Json::obj([
            ("id", Json::Str("fig6/ocean/PPC".into())),
            ("cycles", Json::UInt(18_446_744_073_709_551_615)),
            ("util", Json::Num(0.12345678901234567)),
            ("whole", Json::Num(2.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("tags", Json::Arr(vec![Json::UInt(1), Json::Int(-2)])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_rendering_parses_back_to_the_same_value() {
        let v = Json::obj([
            ("name", Json::Str("bench \"quote\"".into())),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(std::collections::BTreeMap::new())),
            (
                "nested",
                Json::obj([(
                    "cases",
                    Json::Arr(vec![Json::UInt(1), Json::Num(0.5), Json::Null]),
                )]),
            ),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.contains('\n'), "pretty output is multi-line");
        assert!(pretty.ends_with('\n'), "artifact files end with a newline");
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.0,
            1.0 / 3.0,
            1e-300,
            123456.789,
            f64::MIN_POSITIVE,
            -7.125,
        ] {
            let text = Json::Num(x).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), Json::UInt(2));
        m.insert("a".to_string(), Json::UInt(1));
        assert_eq!(Json::Obj(m).to_string(), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn integers_keep_full_precision() {
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_993));
        let neg = parse("-42").unwrap();
        assert_eq!(neg, Json::Int(-42));
    }
}
